"""Multi-codec comparison engine.

The practical question Z-checker answers — *which* compressor should this
application adopt, at *which* setting — needs many assessments viewed
side by side.  :func:`compare_codecs` runs a set of configured codecs
over one field, collects the full reports, ranks the codecs under an
:class:`~repro.core.acceptance.AcceptanceCriteria`, and summarises who
wins each axis (ratio at acceptable quality, PSNR per bit, error
whiteness).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from repro.config.schema import CheckerConfig
from repro.core.acceptance import AcceptanceCriteria, Verdict
from repro.core.compare import assess_compressor
from repro.core.report import AssessmentReport
from repro.errors import CheckerError

__all__ = ["CodecEntry", "CodecComparison", "compare_codecs"]


@dataclass
class CodecEntry:
    """One codec's outcome in a comparison."""

    label: str
    report: AssessmentReport
    verdict: Verdict | None

    @property
    def scalars(self) -> dict[str, float]:
        return self.report.scalars()

    @property
    def acceptable(self) -> bool:
        return self.verdict.passed if self.verdict is not None else True

    @property
    def ratio(self) -> float:
        return float(self.scalars.get("compression_ratio", math.nan))

    @property
    def psnr_per_bit(self) -> float:
        """Quality bought per stored bit (higher = better R-D position)."""
        psnr = self.scalars.get("psnr", math.nan)
        bit_rate = self.scalars.get("bit_rate", math.nan)
        if not (math.isfinite(psnr) and math.isfinite(bit_rate)) or bit_rate <= 0:
            return math.nan
        return psnr / bit_rate

    @property
    def error_whiteness(self) -> float:
        """1 - max |AC(τ≥1)|: 1.0 means perfectly white errors."""
        if self.report.pattern2 is None:
            return math.nan
        ac = np.asarray(self.report.pattern2.autocorrelation)
        if len(ac) < 2:
            return math.nan
        return 1.0 - float(np.abs(ac[1:]).max())


@dataclass
class CodecComparison:
    """All entries plus the per-axis winners."""

    field_label: str
    entries: list[CodecEntry] = field(default_factory=list)

    def entry(self, label: str) -> CodecEntry:
        for e in self.entries:
            if e.label == label:
                return e
        raise CheckerError(f"no codec {label!r} in this comparison")

    @property
    def acceptable_entries(self) -> list[CodecEntry]:
        return [e for e in self.entries if e.acceptable]

    def best_ratio(self) -> CodecEntry | None:
        """Highest compression ratio among *acceptable* codecs."""
        pool = self.acceptable_entries
        if not pool:
            return None
        return max(pool, key=lambda e: e.ratio)

    def best_rate_distortion(self) -> CodecEntry:
        pool = [e for e in self.entries if math.isfinite(e.psnr_per_bit)]
        if not pool:
            raise CheckerError("no codec produced a finite R-D position")
        return max(pool, key=lambda e: e.psnr_per_bit)

    def whitest_errors(self) -> CodecEntry:
        pool = [e for e in self.entries if math.isfinite(e.error_whiteness)]
        if not pool:
            raise CheckerError("no codec has autocorrelation results")
        return max(pool, key=lambda e: e.error_whiteness)

    def table_rows(self) -> list[dict[str, str]]:
        """Summary rows for :func:`repro.viz.ascii.ascii_table`."""
        rows = []
        for e in self.entries:
            s = e.scalars
            rows.append(
                {
                    "codec": e.label,
                    "ratio": f"{e.ratio:.2f}",
                    "psnr[dB]": f"{s.get('psnr', math.nan):.2f}",
                    "ssim": f"{s.get('ssim', math.nan):.5f}",
                    "whiteness": f"{e.error_whiteness:.4f}",
                    "acceptable": "yes" if e.acceptable else "NO",
                }
            )
        return rows


def compare_codecs(
    data: np.ndarray,
    codecs: dict[str, object],
    config: CheckerConfig | None = None,
    criteria: AcceptanceCriteria | None = None,
    field_label: str = "field",
) -> CodecComparison:
    """Assess every codec on ``data`` and rank the outcomes.

    ``codecs`` maps display labels to compressor instances; ``criteria``
    (optional) gates which codecs count as acceptable for the
    ratio-winner question.
    """
    if not codecs:
        raise CheckerError("no codecs to compare")
    comparison = CodecComparison(field_label=field_label)
    for label, codec in codecs.items():
        report = assess_compressor(data, codec, config=config,
                                   with_baselines=False)
        verdict = criteria.evaluate(report) if criteria is not None else None
        comparison.entries.append(
            CodecEntry(label=label, report=report, verdict=verdict)
        )
    return comparison
