"""Speedup tables matching the paper's Figs. 10 and 12."""

from __future__ import annotations

from dataclasses import dataclass

from repro.config.defaults import default_config
from repro.config.schema import CheckerConfig
from repro.core.frameworks import get_framework

__all__ = ["SpeedupRow", "speedup_table", "overall_speedups"]


@dataclass(frozen=True)
class SpeedupRow:
    """cuZC's speedup over one baseline on one dataset."""

    dataset: str
    baseline: str
    pattern: int | None
    speedup: float


def speedup_table(
    shapes: dict[str, tuple[int, int, int]],
    pattern: int,
    config: CheckerConfig | None = None,
    baselines: tuple[str, ...] = ("ompZC", "moZC"),
) -> list[SpeedupRow]:
    """Fig. 12(a/b/c): per-pattern speedups of cuZC over each baseline."""
    config = (config or default_config()).with_patterns(pattern)
    cuzc = get_framework("cuZC")
    rows = []
    for baseline in baselines:
        base = get_framework(baseline)
        for dataset, shape in shapes.items():
            t_cu = cuzc.estimate(shape, config).pattern_seconds[pattern]
            t_base = base.estimate(shape, config).pattern_seconds[pattern]
            rows.append(
                SpeedupRow(
                    dataset=dataset,
                    baseline=baseline,
                    pattern=pattern,
                    speedup=t_base / t_cu,
                )
            )
    return rows


def overall_speedups(
    shapes: dict[str, tuple[int, int, int]],
    config: CheckerConfig | None = None,
    baselines: tuple[str, ...] = ("ompZC", "moZC"),
) -> list[SpeedupRow]:
    """Fig. 10: overall speedups with all metrics enabled."""
    config = config or default_config()
    cuzc = get_framework("cuZC")
    rows = []
    for baseline in baselines:
        base = get_framework(baseline)
        for dataset, shape in shapes.items():
            t_cu = cuzc.estimate(shape, config).total_seconds
            t_base = base.estimate(shape, config).total_seconds
            rows.append(
                SpeedupRow(
                    dataset=dataset,
                    baseline=baseline,
                    pattern=None,
                    speedup=t_base / t_cu,
                )
            )
    return rows
