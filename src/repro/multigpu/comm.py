"""NVLink communication model for the multi-GPU extension.

Modelled after NVLink 2.0 on DGX-style V100 nodes: 50 GB/s per direction
per link pair, microsecond-scale latency.  Collectives use ring
formulations (the standard NCCL cost model: an allreduce of ``s`` bytes
over ``g`` ranks moves ``2·s·(g-1)/g`` bytes per rank).
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["NvLinkSpec", "NVLINK_V100", "allreduce_time", "halo_exchange_time"]


@dataclass(frozen=True)
class NvLinkSpec:
    """Point-to-point interconnect characteristics."""

    name: str
    bandwidth: float  # bytes/s per direction
    latency: float  # seconds per message


NVLINK_V100 = NvLinkSpec(name="NVLink 2.0", bandwidth=50e9, latency=8e-6)


def allreduce_time(
    nbytes: int, n_gpus: int, link: NvLinkSpec = NVLINK_V100
) -> float:
    """Ring allreduce cost (NCCL model)."""
    if n_gpus < 1:
        raise ValueError("n_gpus must be >= 1")
    if n_gpus == 1:
        return 0.0
    steps = 2 * (n_gpus - 1)
    per_step_bytes = nbytes / n_gpus
    return steps * (link.latency + per_step_bytes / link.bandwidth)


def halo_exchange_time(
    halo_bytes_per_side: int, link: NvLinkSpec = NVLINK_V100
) -> float:
    """Simultaneous exchange of halo planes with both z-neighbours."""
    if halo_bytes_per_side == 0:
        return 0.0
    return link.latency + halo_bytes_per_side / link.bandwidth
