"""Z-axis domain decomposition for multi-GPU assessment."""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ShapeError

__all__ = ["ZPartition", "partition_z"]


@dataclass(frozen=True)
class ZPartition:
    """One GPU's share of the volume along z."""

    rank: int
    z0: int
    z1: int  # exclusive
    halo_lo: int
    halo_hi: int

    @property
    def owned(self) -> int:
        return self.z1 - self.z0

    @property
    def with_halo(self) -> tuple[int, int]:
        """(start, stop) including the halo planes this rank must receive."""
        return (self.z0 - self.halo_lo, self.z1 + self.halo_hi)


def partition_z(
    nz: int, n_gpus: int, halo: int = 0
) -> list[ZPartition]:
    """Split ``nz`` planes across GPUs as evenly as possible.

    ``halo`` is the one-sided stencil/window reach each rank needs from
    its neighbours (max autocorrelation lag, or SSIM window − 1).
    """
    if n_gpus < 1:
        raise ValueError("n_gpus must be >= 1")
    if halo < 0:
        raise ValueError("halo must be >= 0")
    if nz < n_gpus:
        raise ShapeError(f"cannot split {nz} planes across {n_gpus} GPUs")
    base = nz // n_gpus
    extra = nz % n_gpus
    parts: list[ZPartition] = []
    z0 = 0
    for rank in range(n_gpus):
        span = base + (1 if rank < extra else 0)
        z1 = z0 + span
        parts.append(
            ZPartition(
                rank=rank,
                z0=z0,
                z1=z1,
                halo_lo=min(halo, z0),
                halo_hi=min(halo, nz - z1),
            )
        )
        z0 = z1
    return parts
