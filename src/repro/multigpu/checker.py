"""Multi-GPU cuZ-Checker: scaling model and exact pattern-1 merging."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from dataclasses import replace

from repro.config.defaults import default_config
from repro.config.schema import CheckerConfig
from repro.core.frameworks import CuZC
from repro.core.workspace import finalize_rate_distortion
from repro.engine.plan import build_plan
from repro.errors import ShapeError
from repro.kernels.pattern1 import Pattern1Result
from repro.multigpu.comm import NvLinkSpec, NVLINK_V100, allreduce_time, halo_exchange_time
from repro.multigpu.partition import partition_z
from repro.telemetry.tracer import NULL_TRACER, Tracer

__all__ = ["MultiGpuTiming", "MultiGpuCuZC", "merge_pattern1"]


@dataclass(frozen=True)
class MultiGpuTiming:
    """Timing decomposition of one multi-GPU assessment."""

    n_gpus: int
    local_seconds: float
    halo_seconds: float
    allreduce_seconds: float

    @property
    def total_seconds(self) -> float:
        return self.local_seconds + self.halo_seconds + self.allreduce_seconds

    def scaling_efficiency(self, single_gpu_seconds: float) -> float:
        """Strong-scaling efficiency vs a one-GPU run."""
        return single_gpu_seconds / (self.n_gpus * self.total_seconds)


class MultiGpuCuZC:
    """Z-decomposed cuZ-Checker across ``n_gpus`` simulated V100s."""

    def __init__(
        self,
        n_gpus: int,
        config: CheckerConfig | None = None,
        link: NvLinkSpec = NVLINK_V100,
    ):
        if n_gpus < 1:
            raise ValueError("n_gpus must be >= 1")
        self.n_gpus = n_gpus
        self.config = config or default_config()
        self.link = link
        self._cuzc = CuZC()
        # per-rank plan: pattern 1 only, standalone execution so a rank's
        # reductions are bit-identical to a bare single-device pattern-1
        # run whatever the global backend choice is (the merge is tested
        # against that at rel=1e-12)
        self._rank_plan = build_plan(
            replace(self.config, metrics="all", patterns=(1,), auxiliary=False),
            backend="metric-oriented",
        )

    def _halo(self) -> int:
        """One-sided z-halo required by the configured metrics."""
        halo = 0
        if 2 in self.config.patterns:
            halo = max(halo, self.config.pattern2.max_lag, 2)
        if 3 in self.config.patterns:
            halo = max(halo, self.config.pattern3.window - 1)
        return halo

    def estimate(self, shape: tuple[int, int, int]) -> MultiGpuTiming:
        """Modelled execution time of the decomposed assessment."""
        nz, ny, nx = shape
        halo = self._halo()
        parts = partition_z(nz, self.n_gpus, halo)
        plane_bytes = ny * nx * 4 * 2  # both fields
        slowest = 0.0
        worst_halo = 0.0
        for part in parts:
            lo, hi = part.with_halo
            local_shape = (hi - lo, ny, nx)
            t = self._cuzc.estimate(local_shape, self.config).total_seconds
            slowest = max(slowest, t)
            worst_halo = max(
                worst_halo,
                halo_exchange_time(
                    max(part.halo_lo, part.halo_hi) * plane_bytes, self.link
                ),
            )
        # the final merge moves the per-GPU reduction records: a few
        # hundred scalars plus the two PDF histograms
        merge_bytes = 4 * (2 * self.config.pattern1.pdf_bins + 64)
        ar = allreduce_time(merge_bytes, self.n_gpus, self.link)
        return MultiGpuTiming(
            n_gpus=self.n_gpus,
            local_seconds=slowest,
            halo_seconds=worst_halo,
            allreduce_seconds=ar,
        )

    def assess_pattern1(
        self,
        orig: np.ndarray,
        dec: np.ndarray,
        tracer: Tracer | None = None,
    ) -> Pattern1Result:
        """Functional decomposed pattern-1 run with exact merging.

        Each rank reduces its owned planes; the merged result equals a
        single-device run bit-for-bit up to FP summation order (tested).
        With a ``tracer``, each rank records into its own sub-tracer and
        the per-rank traces are merged back with stable ids — one export
        track per rank, every rank's spans hanging off its ``rank<i>``
        span.
        """
        orig = np.asarray(orig)
        dec = np.asarray(dec)
        if orig.shape != dec.shape or orig.ndim != 3:
            raise ShapeError("pattern-1 multi-GPU assessment needs matching 3-D fields")
        tracer = tracer if tracer is not None else NULL_TRACER
        parts = partition_z(orig.shape[0], self.n_gpus, halo=0)
        results = []
        with tracer.span(
            "multigpu.pattern1", category="plan",
            ranks=len(parts), bytes=orig.nbytes + dec.nbytes,
        ):
            for rank, part in enumerate(parts):
                sl = slice(part.z0, part.z1)
                sub = Tracer(enabled=tracer.enabled, clock=tracer._clock)
                with tracer.span(
                    f"rank{rank}", category="rank",
                    rank=rank, z0=part.z0, z1=part.z1,
                ) as rank_span:
                    rank_report = self._rank_plan.execute(
                        orig[sl], dec[sl], tracer=sub
                    )
                if tracer.enabled:
                    tracer.merge(sub, parent=rank_span, track=rank + 1)
                results.append(rank_report.pattern1)
        return merge_pattern1(results)


def merge_pattern1(results: list[Pattern1Result]) -> Pattern1Result:
    """Merge per-rank pattern-1 reductions into the global result.

    PDFs are not merged (their bin ranges are rank-local); the scalar
    metrics merge exactly from the sufficient statistics each rank's
    fused kernel produced.
    """
    if not results:
        raise ValueError("nothing to merge")
    n = sum(r.n for r in results)
    sum_e = sum(r.avg_err * r.n for r in results)
    sum_abs = sum(r.avg_abs_err * r.n for r in results)
    sum_sq = sum(r.mse * r.n for r in results)
    min_e = min(r.min_err for r in results)
    max_e = max(r.max_err for r in results)
    min_o = min(r.min_orig for r in results)
    max_o = max(r.max_orig for r in results)
    sum_o = sum(r.mean_orig * r.n for r in results)
    sum_sq_o = sum((r.var_orig + r.mean_orig**2) * r.n for r in results)
    cnt_r = sum(float(r.extras.get("pwr_count", 0.0)) for r in results)
    sum_r = sum(float(r.extras.get("sum_pwr", 0.0)) for r in results)
    with_pwr = [r for r in results if float(r.extras.get("pwr_count", 0.0)) > 0]
    min_r = min((r.min_pwr_err for r in with_pwr), default=0.0)
    max_r = max((r.max_pwr_err for r in with_pwr), default=0.0)

    mse = sum_sq / n
    value_range = max_o - min_o
    mean_o = sum_o / n
    var_o = max(sum_sq_o / n - mean_o * mean_o, 0.0)
    rd = finalize_rate_distortion(n, mse, value_range, var_o)

    return Pattern1Result(
        n=n,
        min_err=min_e,
        max_err=max_e,
        avg_err=sum_e / n,
        avg_abs_err=sum_abs / n,
        max_abs_err=max(abs(min_e), abs(max_e)),
        mse=mse,
        rmse=rd.rmse,
        value_range=value_range,
        nrmse=rd.nrmse,
        snr=rd.snr,
        psnr=rd.psnr,
        min_pwr_err=min_r,
        max_pwr_err=max_r,
        avg_pwr_err=sum_r / cnt_r if cnt_r else 0.0,
        min_orig=min_o,
        max_orig=max_o,
        mean_orig=mean_o,
        var_orig=var_o,
        err_pdf=None,
        pwr_err_pdf=None,
        extras={"pwr_count": cnt_r, "sum_pwr": sum_r, "merged_ranks": len(results)},
    )
