"""Multi-GPU extension (the paper's Section VI future work).

Scales the assessment across simulated GPUs via z-axis domain
decomposition with halo exchange, NVLink-modelled communication, and
exact merging of the pattern-1 reduction results.
"""

from repro.multigpu.partition import ZPartition, partition_z
from repro.multigpu.comm import NvLinkSpec, NVLINK_V100, allreduce_time, halo_exchange_time
from repro.multigpu.checker import MultiGpuCuZC, MultiGpuTiming, merge_pattern1

__all__ = [
    "ZPartition",
    "partition_z",
    "NvLinkSpec",
    "NVLINK_V100",
    "allreduce_time",
    "halo_exchange_time",
    "MultiGpuCuZC",
    "MultiGpuTiming",
    "merge_pattern1",
]
