"""NumPy container adapters for the input engine."""

from __future__ import annotations

from pathlib import Path

import numpy as np

from repro.errors import DataIOError

__all__ = ["read_array", "write_array"]


def read_array(path: str | Path, key: str | None = None) -> np.ndarray:
    """Read a field from ``.npy`` or ``.npz`` (with ``key`` selecting the
    entry of an ``.npz`` archive)."""
    path = Path(path)
    if not path.exists():
        raise DataIOError(f"array file not found: {path}")
    if path.suffix == ".npy":
        return np.load(path)
    if path.suffix == ".npz":
        with np.load(path) as archive:
            names = list(archive.files)
            if key is None:
                if len(names) != 1:
                    raise DataIOError(
                        f"{path} holds {names}; pass key= to choose one"
                    )
                key = names[0]
            if key not in names:
                raise DataIOError(f"{path} has no entry {key!r}; entries: {names}")
            return archive[key]
    raise DataIOError(f"unsupported array format {path.suffix!r} (use .npy/.npz)")


def write_array(path: str | Path, data: np.ndarray) -> None:
    """Write a field to ``.npy``."""
    path = Path(path)
    if path.suffix != ".npy":
        raise DataIOError(f"write_array writes .npy, got {path.suffix!r}")
    np.save(path, np.asarray(data))
