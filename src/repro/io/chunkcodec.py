"""Chunk payload codecs for chunked-v3 bundles.

A v3 bundle stores each z-slab chunk's payload compressed on disk while
every integrity digest (per-chunk SHA-256 and the whole-file SHA-256)
stays over the *uncompressed* bytes.  That split is what keeps the rest
of the system codec-agnostic: corrupt-chunk naming, resume offsets, and
cross-codec report identity all compare raw digests, so a zlib bundle
and a zstd bundle of the same field carry identical checksums.

``zstd`` is an optional dependency (the ``zstandard`` package).  When it
is absent, *writing* falls back to zlib with a one-time
``RuntimeWarning`` — mirroring the executor's thread-fallback policy —
while *reading* a zstd bundle without the package is a hard
:class:`~repro.errors.DataIOError` (silently returning wrong bytes is
not an option for an integrity checker).
"""

from __future__ import annotations

import warnings
import zlib

from repro.errors import DataIOError

__all__ = [
    "CHUNK_CODECS",
    "check_chunk_codec",
    "decode_chunk",
    "encode_chunk",
    "reset_codec_warnings",
    "resolve_chunk_codec",
    "zstd_available",
]

#: codecs a chunked bundle may declare (``raw`` means v2's identity layout)
CHUNK_CODECS = ("raw", "zlib", "zstd")

_ZLIB_LEVEL = 6
_ZSTD_LEVEL = 3
_WARNED_FALLBACKS: set[str] = set()


def zstd_available() -> bool:
    """Whether the optional ``zstandard`` package can be imported."""
    try:
        import zstandard  # noqa: F401
    except ImportError:
        return False
    return True


def reset_codec_warnings() -> None:
    """Re-arm the one-time fallback warning (test hook)."""
    _WARNED_FALLBACKS.clear()


def check_chunk_codec(codec: str) -> str:
    if codec not in CHUNK_CODECS:
        raise DataIOError(
            f"unknown chunk codec {codec!r}; use one of {'/'.join(CHUNK_CODECS)}"
        )
    return codec


def resolve_chunk_codec(codec: str) -> str:
    """The codec this host will actually *write*.

    ``zstd`` degrades to ``zlib`` (warning once per process) when the
    ``zstandard`` package is missing, so ``--codec zstd`` stays usable on
    minimal installs; the manifest records the resolved codec, never the
    requested one.
    """
    codec = check_chunk_codec(codec)
    if codec == "zstd" and not zstd_available():
        if "zstd" not in _WARNED_FALLBACKS:
            _WARNED_FALLBACKS.add("zstd")
            warnings.warn(
                "zstandard is not installed; writing zlib-packed chunks "
                "instead (reading existing zstd bundles still requires "
                "the zstandard package)",
                RuntimeWarning,
                stacklevel=2,
            )
        return "zlib"
    return codec


def encode_chunk(codec: str, raw: bytes) -> bytes:
    """Compress one chunk payload with ``codec`` (``raw`` is identity)."""
    check_chunk_codec(codec)
    if codec == "raw":
        return raw
    if codec == "zlib":
        return zlib.compress(raw, _ZLIB_LEVEL)
    try:
        import zstandard
    except ImportError as exc:
        raise DataIOError(
            "encoding zstd chunks requires the zstandard package "
            "(pip install zstandard), or resolve the codec first"
        ) from exc
    return zstandard.ZstdCompressor(level=_ZSTD_LEVEL).compress(raw)


def decode_chunk(codec: str, stored: bytes, expected_nbytes: int) -> bytes:
    """Decompress one stored payload back to its raw bytes.

    Any decompression failure — torn stream, flipped byte, wrong codec —
    raises :class:`~repro.errors.DataIOError`; callers wrap it with the
    chunk's identity so corruption is named the same way as a checksum
    mismatch.
    """
    check_chunk_codec(codec)
    if codec == "raw":
        raw = stored
    elif codec == "zlib":
        try:
            raw = zlib.decompress(stored)
        except zlib.error as exc:
            raise DataIOError(f"zlib payload does not decompress: {exc}") from exc
    else:
        try:
            import zstandard
        except ImportError as exc:
            raise DataIOError(
                "this bundle stores zstd-packed chunks; reading it "
                "requires the zstandard package (pip install zstandard)"
            ) from exc
        try:
            raw = zstandard.ZstdDecompressor().decompress(
                stored, max_output_size=expected_nbytes
            )
        except zstandard.ZstdError as exc:
            raise DataIOError(f"zstd payload does not decompress: {exc}") from exc
    if len(raw) != expected_nbytes:
        raise DataIOError(
            f"decompressed payload is {len(raw)} B, manifest says "
            f"{expected_nbytes} B"
        )
    return raw
