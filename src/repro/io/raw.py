"""SDRBench-style raw binary I/O.

SDRBench ships fields as headerless little-endian ``float32`` streams in
C order (x fastest); the shape comes from the dataset catalogue.  These
helpers read/write that format with explicit shape, dtype and endianness
control and defensive size checking.
"""

from __future__ import annotations

import math
from pathlib import Path

import numpy as np

from repro.errors import DataIOError

__all__ = ["read_raw", "write_raw"]

_DTYPES = {"float32": "f4", "float64": "f8"}


def _np_dtype(dtype: str, endian: str) -> np.dtype:
    if dtype not in _DTYPES:
        raise DataIOError(f"unsupported raw dtype {dtype!r}; use float32/float64")
    if endian not in ("little", "big"):
        raise DataIOError(f"endian must be 'little' or 'big', got {endian!r}")
    prefix = "<" if endian == "little" else ">"
    return np.dtype(prefix + _DTYPES[dtype])


def read_raw(
    path: str | Path,
    shape: tuple[int, ...],
    dtype: str = "float32",
    endian: str = "little",
) -> np.ndarray:
    """Read a headerless binary field.

    Raises :class:`~repro.errors.DataIOError` if the file size does not
    match ``shape`` exactly (a truncated download or a wrong catalogue
    entry, both common SDRBench accidents).
    """
    path = Path(path)
    if not path.exists():
        raise DataIOError(f"raw file not found: {path}")
    dt = _np_dtype(dtype, endian)
    expected = math.prod(shape) * dt.itemsize
    actual = path.stat().st_size
    if actual != expected:
        raise DataIOError(
            f"{path}: size {actual} B does not match shape {shape} "
            f"({expected} B expected)"
        )
    data = np.fromfile(path, dtype=dt)
    return data.reshape(shape).astype(np.float32 if dtype == "float32" else np.float64)


def write_raw(
    path: str | Path,
    data: np.ndarray,
    dtype: str = "float32",
    endian: str = "little",
) -> None:
    """Write a field as a headerless binary stream."""
    dt = _np_dtype(dtype, endian)
    np.ascontiguousarray(data).astype(dt).tofile(Path(path))
