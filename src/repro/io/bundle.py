"""Multi-field dataset bundles with a JSON manifest.

A bundle is a directory of raw binaries plus ``manifest.json`` recording
the application name, shape, and field list — how this library stores the
synthetic SDRBench stand-ins on disk, and how it would wrap the real
downloads.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path

from repro.datasets.fields import Dataset, Field
from repro.errors import DataIOError
from repro.io.raw import read_raw, write_raw

__all__ = ["DatasetBundle", "save_bundle", "load_bundle"]

_MANIFEST = "manifest.json"


@dataclass(frozen=True)
class DatasetBundle:
    """Handle to an on-disk dataset directory."""

    root: Path
    name: str
    shape: tuple[int, int, int]
    field_names: tuple[str, ...]

    def field_path(self, field_name: str) -> Path:
        return self.root / f"{field_name}.f32"

    def load_field(self, field_name: str) -> Field:
        if field_name not in self.field_names:
            raise DataIOError(
                f"bundle {self.name!r} has no field {field_name!r}; "
                f"known: {list(self.field_names)}"
            )
        data = read_raw(self.field_path(field_name), self.shape)
        return Field(name=field_name, data=data)

    def load(self) -> Dataset:
        ds = Dataset(name=self.name)
        for field_name in self.field_names:
            ds.add(self.load_field(field_name))
        return ds


def save_bundle(dataset: Dataset, root: str | Path) -> DatasetBundle:
    """Write a dataset as raw binaries + manifest."""
    root = Path(root)
    root.mkdir(parents=True, exist_ok=True)
    if not dataset.fields:
        raise DataIOError("cannot save an empty dataset")
    shapes = {f.shape for f in dataset.fields}
    if len(shapes) != 1:
        raise DataIOError(f"bundle fields must share one shape, got {shapes}")
    shape = shapes.pop()
    for f in dataset.fields:
        write_raw(root / f"{f.name}.f32", f.data)
    manifest = {
        "name": dataset.name,
        "shape": list(shape),
        "fields": dataset.field_names,
        "format": "raw-f32-little-c",
    }
    (root / _MANIFEST).write_text(json.dumps(manifest, indent=2))
    return DatasetBundle(
        root=root,
        name=dataset.name,
        shape=shape,
        field_names=tuple(dataset.field_names),
    )


def load_bundle(root: str | Path) -> DatasetBundle:
    """Open a bundle directory by reading its manifest."""
    root = Path(root)
    manifest_path = root / _MANIFEST
    if not manifest_path.exists():
        raise DataIOError(f"no {_MANIFEST} in {root}")
    try:
        manifest = json.loads(manifest_path.read_text())
        name = manifest["name"]
        shape = tuple(int(s) for s in manifest["shape"])
        fields = tuple(manifest["fields"])
    except (KeyError, ValueError, TypeError) as exc:
        raise DataIOError(f"malformed manifest in {root}: {exc}") from exc
    if len(shape) != 3:
        raise DataIOError(f"bundle shape must be 3-D, got {shape}")
    missing = [f for f in fields if not (root / f"{f}.f32").exists()]
    if missing:
        raise DataIOError(f"bundle {root} is missing field files: {missing}")
    return DatasetBundle(root=root, name=name, shape=shape, field_names=fields)
