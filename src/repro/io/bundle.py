"""Multi-field dataset bundles with a JSON manifest.

A bundle is a directory of raw binaries plus ``manifest.json``.  Two
manifest generations coexist:

**v1** (``raw-f32-little-c`` / ``raw-f64-little-c``) records the
application name, shape, and field list — one headerless raw binary per
field, read whole.

**v2** (``chunked-v2``) is the out-of-core container: every field is
split into consecutive z-slab chunks and the manifest records, per
chunk, the byte offset, slab extent, byte count, and SHA-256 — plus a
whole-file SHA-256 and the field's value range.  The data files keep the
exact v1 raw layout (chunks are contiguous in z order), so a v2 bundle
is still readable by any v1 raw reader; what v2 adds is the ability to
*stream* a field block-by-block with per-chunk integrity verification,
the way qcow2 tooling walks L2 clusters, without ever materialising the
whole array.  :meth:`DatasetBundle.iter_field_chunks` is the reader the
resumable archive auditor (:mod:`repro.audit`) feeds straight into a
:class:`~repro.engine.tiling.TileAccumulator`.

**v3** (``chunked-v3``) keeps the v2 manifest but stores each chunk's
payload compressed (zlib or zstd — see :mod:`repro.io.chunkcodec`).
Every digest stays over the *uncompressed* bytes, so corrupt-chunk
naming, resume semantics, and whole-file checksums are identical across
codecs; the manifest additionally records each chunk's stored (on-disk)
byte count next to its raw one.  Readers decompress transparently —
:meth:`DatasetBundle.iter_field_chunks` yields the same blocks whatever
the codec.
"""

from __future__ import annotations

import hashlib
import json
import math
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.datasets.fields import Dataset, Field
from repro.errors import DataIOError
from repro.io.chunkcodec import (
    check_chunk_codec,
    decode_chunk,
    encode_chunk,
    resolve_chunk_codec,
    zstd_available,
)
from repro.io.raw import read_raw, write_raw

__all__ = [
    "ChunkInfo",
    "ChunkedFieldWriter",
    "DatasetBundle",
    "save_bundle",
    "save_bundle_chunked",
    "load_bundle",
    "verify_bundle",
    "DEFAULT_CHUNK_NZ",
]

_MANIFEST = "manifest.json"
_V2_FORMAT = "chunked-v2"
_V3_FORMAT = "chunked-v3"
_V1_FORMATS = ("raw-f32-little-c", "raw-f64-little-c")
_SUFFIX = {"float32": ".f32", "float64": ".f64"}
_NP_DTYPE = {"float32": np.dtype("<f4"), "float64": np.dtype("<f8")}

#: default z-slab depth per chunk for v2 bundles
DEFAULT_CHUNK_NZ = 16


def _check_dtype(dtype: str) -> str:
    if dtype not in _SUFFIX:
        raise DataIOError(f"unsupported bundle dtype {dtype!r}; use float32/float64")
    return dtype


@dataclass(frozen=True)
class ChunkInfo:
    """One z-slab of a chunked field: location, extent, and integrity.

    ``nbytes`` is always the *raw* (uncompressed) payload size and
    ``sha256`` the digest of those raw bytes; ``stored_nbytes`` is the
    on-disk size when the bundle's codec compresses payloads (``None``
    for raw layouts, where stored == raw).
    """

    index: int
    z0: int
    nz: int
    offset: int
    nbytes: int
    sha256: str | None = None
    stored_nbytes: int | None = None

    @property
    def stored(self) -> int:
        """On-disk byte count (== ``nbytes`` for uncompressed chunks)."""
        return self.nbytes if self.stored_nbytes is None else self.stored_nbytes

    def to_dict(self) -> dict:
        out = {
            "z0": self.z0,
            "nz": self.nz,
            "offset": self.offset,
            "nbytes": self.nbytes,
        }
        if self.sha256 is not None:
            out["sha256"] = self.sha256
        if self.stored_nbytes is not None:
            out["stored_nbytes"] = self.stored_nbytes
        return out


class ChunkedFieldWriter:
    """Streams one field to disk as consecutive z-blocks.

    The writer is itself out-of-core: callers append blocks of any depth
    (a generator producing a 100 GB field never holds more than one
    block) and the writer maintains the per-chunk SHA-256 table, the
    whole-file SHA-256, and the running value range for the manifest.

    ``codec`` selects the on-disk payload layout: ``"raw"`` (default)
    writes the v2-identical uncompressed stream; ``"zlib"``/``"zstd"``
    compress each chunk independently (zstd degrades to zlib with a
    warning when the package is missing).  Digests always cover the raw
    bytes, whatever the codec.
    """

    def __init__(
        self,
        root: str | Path,
        name: str,
        shape: tuple[int, int, int],
        dtype: str = "float32",
        codec: str = "raw",
    ):
        self.root = Path(root)
        self.name = name
        self.shape = tuple(int(s) for s in shape)
        if len(self.shape) != 3 or min(self.shape) < 1:
            raise DataIOError(f"chunked fields must be 3-D, got {shape}")
        self.dtype = _check_dtype(dtype)
        self.codec = resolve_chunk_codec(codec)
        self.path = self.root / f"{name}{_SUFFIX[dtype]}"
        self._np_dtype = _NP_DTYPE[dtype]
        self._fh = self.path.open("wb")
        self._file_sha = hashlib.sha256()
        self._chunks: list[ChunkInfo] = []
        self._z = 0
        self._offset = 0
        self._min = math.inf
        self._max = -math.inf
        self._closed = False

    @property
    def z_written(self) -> int:
        return self._z

    def append(self, block: np.ndarray) -> ChunkInfo:
        """Write the next z-block and record its chunk entry."""
        if self._closed:
            raise DataIOError(f"writer for {self.path} is closed")
        block = np.asarray(block)
        nz, ny, nx = self.shape
        if block.ndim != 3 or block.shape[1:] != (ny, nx):
            raise DataIOError(
                f"block must be (cz, {ny}, {nx}), got {block.shape}"
            )
        cz = block.shape[0]
        if self._z + cz > nz:
            raise DataIOError(
                f"field {self.name!r} overflows shape {self.shape}: "
                f"{self._z} slices written, block adds {cz}"
            )
        raw = np.ascontiguousarray(block).astype(self._np_dtype).tobytes()
        stored = encode_chunk(self.codec, raw)
        self._fh.write(stored)
        # digests cover the raw stream — identical for every codec
        self._file_sha.update(raw)
        info = ChunkInfo(
            index=len(self._chunks),
            z0=self._z,
            nz=cz,
            offset=self._offset,
            nbytes=len(raw),
            sha256=hashlib.sha256(raw).hexdigest(),
            stored_nbytes=len(stored) if self.codec != "raw" else None,
        )
        self._chunks.append(info)
        self._z += cz
        self._offset += len(stored)
        self._min = min(self._min, float(block.min()))
        self._max = max(self._max, float(block.max()))
        return info

    def close(self) -> dict:
        """Finish the field; returns its manifest entry fragments."""
        if self._closed:
            raise DataIOError(f"writer for {self.path} already closed")
        self._fh.close()
        self._closed = True
        if self._z != self.shape[0]:
            raise DataIOError(
                f"field {self.name!r} is incomplete: {self._z} of "
                f"{self.shape[0]} slices written"
            )
        return {
            "chunks": [c.to_dict() for c in self._chunks],
            "sha256": self._file_sha.hexdigest(),
            "min": self._min,
            "max": self._max,
        }

    def __enter__(self) -> "ChunkedFieldWriter":
        return self

    def __exit__(self, exc_type, *exc) -> bool:
        if exc_type is None:
            self.close()
        elif not self._closed:
            self._fh.close()
            self._closed = True
        return False


@dataclass(frozen=True)
class DatasetBundle:
    """Handle to an on-disk dataset directory (v1 whole-file, v2 chunked,
    or v3 compressed-chunk)."""

    root: Path
    name: str
    shape: tuple[int, int, int]
    field_names: tuple[str, ...]
    dtype: str = "float32"
    version: int = 1
    #: per-field chunk tables (v2/v3 only; ``None`` for v1 bundles)
    chunks: dict | None = None
    #: per-field whole-file SHA-256 over raw bytes (v2/v3 only)
    file_sha256: dict | None = None
    #: per-field (min, max) value range (v2/v3 only)
    stats: dict | None = None
    #: chunk payload codec ("raw" for v1/v2; zlib/zstd for v3)
    codec: str = "raw"

    def field_path(self, field_name: str) -> Path:
        # the suffix follows the manifest dtype — a float64 bundle's files
        # are .f64, and round-trip through save/load without a cast
        return self.root / f"{field_name}{_SUFFIX[self.dtype]}"

    def _require_field(self, field_name: str) -> None:
        if field_name not in self.field_names:
            raise DataIOError(
                f"bundle {self.name!r} has no field {field_name!r}; "
                f"known: {list(self.field_names)}"
            )

    def value_range(self, field_name: str) -> tuple[float, float] | None:
        """(min, max) recorded at write time, or ``None`` for v1 bundles."""
        self._require_field(field_name)
        if not self.stats or field_name not in self.stats:
            return None
        lo, hi = self.stats[field_name]
        return float(lo), float(hi)

    def field_chunks(self, field_name: str, chunk_nz: int | None = None):
        """The chunk table for one field.

        v2 bundles return the manifest's table (offsets + checksums);
        v1 bundles synthesise a table of ``chunk_nz``-deep slabs from the
        contiguous raw layout (no checksums — nothing to verify against).
        """
        self._require_field(field_name)
        if self.chunks is not None:
            return tuple(self.chunks[field_name])
        nz, ny, nx = self.shape
        depth = int(chunk_nz or DEFAULT_CHUNK_NZ)
        if depth < 1:
            raise DataIOError(f"chunk_nz must be >= 1, got {chunk_nz}")
        itemsize = _NP_DTYPE[self.dtype].itemsize
        plane = ny * nx * itemsize
        out = []
        for index, z0 in enumerate(range(0, nz, depth)):
            cz = min(depth, nz - z0)
            out.append(
                ChunkInfo(
                    index=index,
                    z0=z0,
                    nz=cz,
                    offset=z0 * plane,
                    nbytes=cz * plane,
                )
            )
        return tuple(out)

    def iter_field_chunks(
        self,
        field_name: str,
        chunk_nz: int | None = None,
        verify: bool = True,
        start: int = 0,
    ):
        """Yield ``(ChunkInfo, block)`` for one field, in z order.

        Each block is read by offset (one seek + one read per chunk), so
        peak memory is one chunk regardless of field size.  Compressed
        (v3) payloads are decompressed transparently — callers always see
        raw blocks.  With ``verify=True`` every v2/v3 chunk's SHA-256 is
        checked (over the *raw* bytes) before they are interpreted; a
        mismatch — or a payload that will not decompress — raises
        :class:`~repro.errors.DataIOError` naming the chunk.  ``start``
        skips the first ``start`` chunks without reading them — the
        resume path of a checkpointed audit.
        """
        chunks = self.field_chunks(field_name, chunk_nz)
        path = self.field_path(field_name)
        if not path.exists():
            raise DataIOError(f"bundle {self.root} is missing {path.name}")
        # fail up front with a clear message rather than per chunk when the
        # optional zstd reader is missing
        if self.codec == "zstd" and not zstd_available():
            raise DataIOError(
                f"bundle {self.name!r} stores zstd-packed chunks; reading "
                "it requires the zstandard package (pip install zstandard)"
            )
        dt = _NP_DTYPE[self.dtype]
        ny, nx = self.shape[1], self.shape[2]
        native = np.float32 if self.dtype == "float32" else np.float64
        with path.open("rb") as fh:
            for info in chunks[start:]:
                fh.seek(info.offset)
                stored = fh.read(info.stored)
                if len(stored) != info.stored:
                    raise DataIOError(
                        f"bundle {self.name!r} field {field_name!r} chunk "
                        f"{info.index} (z0={info.z0}) is truncated: "
                        f"{len(stored)} of {info.stored} bytes"
                    )
                try:
                    raw = decode_chunk(self.codec, stored, info.nbytes)
                except DataIOError as exc:
                    raise DataIOError(
                        f"bundle {self.name!r} field {field_name!r} chunk "
                        f"{info.index} (z0={info.z0}) is corrupt: {exc}"
                    ) from exc
                if verify and info.sha256 is not None:
                    digest = hashlib.sha256(raw).hexdigest()
                    if digest != info.sha256:
                        raise DataIOError(
                            f"bundle {self.name!r} field {field_name!r} chunk "
                            f"{info.index} (z0={info.z0}) checksum mismatch: "
                            f"manifest {info.sha256[:12]}…, file {digest[:12]}…"
                        )
                block = (
                    np.frombuffer(raw, dtype=dt)
                    .reshape(info.nz, ny, nx)
                    .astype(native)
                )
                yield info, block

    def load_field(self, field_name: str) -> Field:
        self._require_field(field_name)
        if self.codec != "raw":
            # compressed layouts have no whole-file raw image to mmap;
            # assemble from streamed chunks instead
            native = np.float32 if self.dtype == "float32" else np.float64
            data = np.empty(self.shape, dtype=native)
            for info, block in self.iter_field_chunks(field_name):
                data[info.z0 : info.z0 + info.nz] = block
            return Field(name=field_name, data=data)
        data = read_raw(self.field_path(field_name), self.shape, dtype=self.dtype)
        return Field(name=field_name, data=data)

    def load(self) -> Dataset:
        ds = Dataset(name=self.name)
        for field_name in self.field_names:
            ds.add(self.load_field(field_name))
        return ds


def _bundle_dtype(dataset: Dataset, dtype: str | None) -> str:
    if dtype is not None:
        return _check_dtype(dtype)
    dtypes = {str(f.data.dtype) for f in dataset.fields}
    if len(dtypes) != 1:
        raise DataIOError(f"bundle fields must share one dtype, got {dtypes}")
    return _check_dtype(dtypes.pop())


def _common_shape(dataset: Dataset) -> tuple[int, int, int]:
    if not dataset.fields:
        raise DataIOError("cannot save an empty dataset")
    shapes = {f.shape for f in dataset.fields}
    if len(shapes) != 1:
        raise DataIOError(f"bundle fields must share one shape, got {shapes}")
    return shapes.pop()


def save_bundle(
    dataset: Dataset, root: str | Path, dtype: str | None = None
) -> DatasetBundle:
    """Write a dataset as whole raw binaries + a v1 manifest.

    The on-disk dtype defaults to the fields' own dtype, so a float64
    dataset round-trips losslessly through ``.f64`` files.
    """
    root = Path(root)
    root.mkdir(parents=True, exist_ok=True)
    shape = _common_shape(dataset)
    dtype = _bundle_dtype(dataset, dtype)
    suffix = _SUFFIX[dtype]
    for f in dataset.fields:
        write_raw(root / f"{f.name}{suffix}", f.data, dtype=dtype)
    manifest = {
        "name": dataset.name,
        "shape": list(shape),
        "fields": dataset.field_names,
        "format": f"raw-{suffix[1:]}-little-c",
        "dtype": dtype,
    }
    (root / _MANIFEST).write_text(json.dumps(manifest, indent=2))
    return DatasetBundle(
        root=root,
        name=dataset.name,
        shape=shape,
        field_names=tuple(dataset.field_names),
        dtype=dtype,
    )


def save_bundle_chunked(
    dataset: Dataset,
    root: str | Path,
    chunk_nz: int = DEFAULT_CHUNK_NZ,
    dtype: str | None = None,
    codec: str | None = None,
) -> DatasetBundle:
    """Write a dataset as a chunked v2 (raw) or v3 (compressed) bundle.

    Every field is written in ``chunk_nz``-deep z-slabs through a
    :class:`ChunkedFieldWriter`, so the manifest carries per-chunk byte
    offsets, extents, and SHA-256 digests plus the whole-file digest and
    value range per field.  ``codec=None`` or ``"raw"`` emits the exact
    v2 layout (data files stay v1-readable); ``"zlib"``/``"zstd"``
    compress each chunk and emit a v3 manifest recording the codec and
    per-chunk stored byte counts.
    """
    if chunk_nz < 1:
        raise DataIOError(f"chunk_nz must be >= 1, got {chunk_nz}")
    codec_resolved = resolve_chunk_codec(codec) if codec is not None else "raw"
    root = Path(root)
    root.mkdir(parents=True, exist_ok=True)
    shape = _common_shape(dataset)
    dtype = _bundle_dtype(dataset, dtype)
    chunks: dict = {}
    file_sha: dict = {}
    stats: dict = {}
    for f in dataset.fields:
        writer = ChunkedFieldWriter(
            root, f.name, shape, dtype=dtype, codec=codec_resolved
        )
        try:
            for z0 in range(0, shape[0], chunk_nz):
                writer.append(f.data[z0 : z0 + chunk_nz])
        except Exception:
            writer._fh.close()
            raise
        entry = writer.close()
        chunks[f.name] = entry["chunks"]
        file_sha[f.name] = entry["sha256"]
        stats[f.name] = [entry["min"], entry["max"]]
    manifest = {
        "name": dataset.name,
        "shape": list(shape),
        "fields": dataset.field_names,
        "format": _V2_FORMAT if codec_resolved == "raw" else _V3_FORMAT,
        "dtype": dtype,
        "endian": "little",
        "chunk_nz": int(chunk_nz),
        "chunks": chunks,
        "file_sha256": file_sha,
        "stats": stats,
    }
    if codec_resolved != "raw":
        manifest["codec"] = codec_resolved
    (root / _MANIFEST).write_text(json.dumps(manifest, indent=2))
    return load_bundle(root)


def _parse_chunk_table(field_name: str, entries, shape) -> tuple[ChunkInfo, ...]:
    out = []
    z = 0
    offset = 0
    for index, entry in enumerate(entries):
        stored = entry.get("stored_nbytes")
        info = ChunkInfo(
            index=index,
            z0=int(entry["z0"]),
            nz=int(entry["nz"]),
            offset=int(entry["offset"]),
            nbytes=int(entry["nbytes"]),
            sha256=entry.get("sha256"),
            stored_nbytes=int(stored) if stored is not None else None,
        )
        if info.z0 != z or info.offset != offset or info.nz < 1:
            raise DataIOError(
                f"field {field_name!r} chunk {index} is not contiguous "
                f"(z0={info.z0} expected {z}, offset={info.offset} "
                f"expected {offset})"
            )
        z += info.nz
        # chunks pack back-to-back on disk, so the next offset advances by
        # the stored (possibly compressed) size
        offset += info.stored
        out.append(info)
    if z != shape[0]:
        raise DataIOError(
            f"field {field_name!r} chunk table covers {z} of {shape[0]} slices"
        )
    return tuple(out)


def load_bundle(root: str | Path) -> DatasetBundle:
    """Open a bundle directory by reading its manifest (v1 or v2)."""
    root = Path(root)
    manifest_path = root / _MANIFEST
    if not manifest_path.exists():
        raise DataIOError(f"no {_MANIFEST} in {root}")
    try:
        manifest = json.loads(manifest_path.read_text())
        name = manifest["name"]
        shape = tuple(int(s) for s in manifest["shape"])
        fields = tuple(manifest["fields"])
        fmt = manifest.get("format", _V1_FORMATS[0])
        dtype = _check_dtype(manifest.get("dtype", "float32"))
    except (KeyError, ValueError, TypeError) as exc:
        raise DataIOError(f"malformed manifest in {root}: {exc}") from exc
    if len(shape) != 3:
        raise DataIOError(f"bundle shape must be 3-D, got {shape}")

    if fmt in (_V2_FORMAT, _V3_FORMAT):
        version = 2 if fmt == _V2_FORMAT else 3
        codec = "raw"
        if version == 3:
            try:
                codec = check_chunk_codec(str(manifest["codec"]))
            except KeyError as exc:
                raise DataIOError(
                    f"malformed v3 manifest in {root}: missing codec"
                ) from exc
        try:
            chunks = {
                f: _parse_chunk_table(f, manifest["chunks"][f], shape)
                for f in fields
            }
            file_sha = {f: str(manifest["file_sha256"][f]) for f in fields}
            stats = {
                f: (float(manifest["stats"][f][0]), float(manifest["stats"][f][1]))
                for f in fields
            }
        except (KeyError, ValueError, TypeError, IndexError) as exc:
            raise DataIOError(
                f"malformed v{version} manifest in {root}: {exc}"
            ) from exc
        bundle = DatasetBundle(
            root=root,
            name=name,
            shape=shape,
            field_names=fields,
            dtype=dtype,
            version=version,
            chunks=chunks,
            file_sha256=file_sha,
            stats=stats,
            codec=codec,
        )
    elif fmt in _V1_FORMATS:
        bundle = DatasetBundle(
            root=root,
            name=name,
            shape=shape,
            field_names=fields,
            dtype=dtype,
            version=1,
        )
    else:
        raise DataIOError(f"unknown bundle format {fmt!r} in {root}")

    suffix = _SUFFIX[bundle.dtype]
    missing = [f for f in fields if not (root / f"{f}{suffix}").exists()]
    if missing:
        raise DataIOError(f"bundle {root} is missing field files: {missing}")
    return bundle


def verify_bundle(bundle: DatasetBundle | str | Path, deep: bool = True) -> dict:
    """Integrity-check every field of a bundle.

    Always checks file sizes against the manifest geometry.  With
    ``deep=True`` (default) chunked bundles additionally verify every
    chunk's SHA-256 (over the raw bytes, decompressing v3 payloads
    first) *and* the whole-file SHA-256 in one sequential read per
    field.  The pass does **not** stop at the first failure: every
    corrupt chunk across every field is collected — bad chunks are
    skipped over by their manifest offsets — and a single
    :class:`~repro.errors.DataIOError` names them all.  On success
    returns ``{"fields", "chunks", "bytes", "bytes_raw",
    "bytes_stored", "codec"}`` where ``bytes`` == ``bytes_stored`` is
    the on-disk total and ``bytes_raw`` the uncompressed total.
    """
    if not isinstance(bundle, DatasetBundle):
        bundle = load_bundle(bundle)
    if deep and bundle.codec == "zstd" and not zstd_available():
        raise DataIOError(
            f"bundle {bundle.name!r} stores zstd-packed chunks; verifying "
            "it requires the zstandard package (pip install zstandard)"
        )
    itemsize = _NP_DTYPE[bundle.dtype].itemsize
    raw_size = math.prod(bundle.shape) * itemsize
    total_chunks = 0
    total_stored = 0
    total_raw = 0
    failures: list[str] = []
    for field_name in bundle.field_names:
        path = bundle.field_path(field_name)
        actual = path.stat().st_size
        if bundle.codec == "raw":
            expected_size = raw_size
        else:
            table = bundle.field_chunks(field_name)
            expected_size = table[-1].offset + table[-1].stored if table else 0
        if actual != expected_size:
            raise DataIOError(
                f"bundle {bundle.name!r} field {field_name!r}: size {actual} B "
                f"does not match manifest ({expected_size} B "
                f"for shape {bundle.shape}, codec {bundle.codec!r})"
            )
        total_stored += actual
        total_raw += raw_size
        if not deep or bundle.version < 2:
            continue
        file_sha = hashlib.sha256()
        field_bad = 0
        with path.open("rb") as fh:
            for info in bundle.field_chunks(field_name):
                fh.seek(info.offset)
                stored = fh.read(info.stored)
                total_chunks += 1
                try:
                    raw = decode_chunk(bundle.codec, stored, info.nbytes)
                except DataIOError as exc:
                    failures.append(
                        f"field {field_name!r} chunk {info.index} "
                        f"(z0={info.z0}) is corrupt: {exc}"
                    )
                    field_bad += 1
                    continue
                digest = hashlib.sha256(raw).hexdigest()
                if digest != info.sha256:
                    failures.append(
                        f"field {field_name!r} chunk {info.index} "
                        f"(z0={info.z0}) checksum mismatch: manifest "
                        f"{info.sha256[:12]}…, file {digest[:12]}…"
                    )
                    field_bad += 1
                    continue
                file_sha.update(raw)
        if field_bad == 0 and bundle.file_sha256 is not None:
            expected_sha = bundle.file_sha256[field_name]
            if file_sha.hexdigest() != expected_sha:
                failures.append(
                    f"field {field_name!r}: whole-file checksum mismatch"
                )
    if failures:
        raise DataIOError(
            f"bundle {bundle.name!r}: {len(failures)} integrity "
            "failure(s):\n  " + "\n  ".join(failures)
        )
    return {
        "fields": len(bundle.field_names),
        "chunks": total_chunks,
        "bytes": total_stored,
        "bytes_raw": total_raw,
        "bytes_stored": total_stored,
        "codec": bundle.codec,
    }
