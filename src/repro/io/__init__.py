"""Input/output engine (Z-checker's input/output-engine modules).

Readers for SDRBench raw binaries and NumPy containers, plus dataset
bundles with manifests for multi-field applications — including the
chunked v2 container that streams z-slabs with per-chunk checksums.
"""

from repro.io.raw import read_raw, write_raw
from repro.io.npyio import read_array, write_array
from repro.io.bundle import (
    ChunkInfo,
    ChunkedFieldWriter,
    DatasetBundle,
    DEFAULT_CHUNK_NZ,
    load_bundle,
    save_bundle,
    save_bundle_chunked,
    verify_bundle,
)

__all__ = [
    "read_raw",
    "write_raw",
    "read_array",
    "write_array",
    "ChunkInfo",
    "ChunkedFieldWriter",
    "DatasetBundle",
    "DEFAULT_CHUNK_NZ",
    "load_bundle",
    "save_bundle",
    "save_bundle_chunked",
    "verify_bundle",
]
