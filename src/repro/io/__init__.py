"""Input/output engine (Z-checker's input/output-engine modules).

Readers for SDRBench raw binaries and NumPy containers, plus dataset
bundles with manifests for multi-field applications.
"""

from repro.io.raw import read_raw, write_raw
from repro.io.npyio import read_array, write_array
from repro.io.bundle import DatasetBundle, load_bundle, save_bundle

__all__ = [
    "read_raw",
    "write_raw",
    "read_array",
    "write_array",
    "DatasetBundle",
    "load_bundle",
    "save_bundle",
]
