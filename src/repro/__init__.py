"""cuZ-Checker reproduction — GPU-model-based lossy compression assessment.

This package reproduces the system described in *"cuZ-Checker: A GPU-Based
Ultra-Fast Assessment System for Lossy Compressions"* (IEEE CLUSTER 2021).
Because this environment has no physical GPU, the CUDA substrate is
replaced by :mod:`repro.gpusim`, a functional + analytical execution-model
simulator of an NVIDIA V100 (see ``DESIGN.md`` for the substitution
rationale).

Public entry points
-------------------

:func:`repro.core.compare.compare_data`
    One-call full assessment of an original/decompressed pair.
:class:`repro.core.checker.CuZChecker`
    The pattern-oriented checker (the paper's contribution).
:class:`repro.core.frameworks.OmpZChecker`, :class:`repro.core.frameworks.MoZChecker`
    The two baselines used throughout the evaluation.
:mod:`repro.compressors`
    Error-bounded (SZ-style) and fixed-rate (ZFP-style) lossy compressors.
:mod:`repro.datasets`
    Synthetic stand-ins for the four SDRBench applications.
"""

from __future__ import annotations

from repro._version import __version__
from repro import errors

__all__ = ["__version__", "errors", "compare_data", "CuZChecker"]


def __getattr__(name: str):
    # Lazy imports keep `import repro` cheap and avoid cycles.
    if name == "compare_data":
        from repro.core.compare import compare_data

        return compare_data
    if name == "CuZChecker":
        from repro.core.checker import CuZChecker

        return CuZChecker
    raise AttributeError(f"module 'repro' has no attribute {name!r}")
