"""Dataset substrate: SDRBench stand-ins for the four evaluated apps.

The paper evaluates on SDRBench datasets (Hurricane ISABEL, NYX,
Scale-LETKF, Miranda).  Real SDRBench binaries load through
:mod:`repro.io.raw` when available; otherwise :mod:`repro.datasets`
synthesises fields with matching shapes and smoothness classes (see
DESIGN.md for the substitution rationale).
"""

from repro.datasets.fields import Field, Dataset
from repro.datasets.registry import (
    PAPER_SHAPES,
    DATASET_NAMES,
    dataset_info,
    generate_dataset,
    generate_field,
    scaled_shape,
)
from repro.datasets.synthetic import (
    spectral_field,
    gaussian_bumps,
    turbulence_field,
    layered_field,
    particle_density_field,
    vortex_field,
)

__all__ = [
    "Field",
    "Dataset",
    "PAPER_SHAPES",
    "DATASET_NAMES",
    "dataset_info",
    "generate_dataset",
    "generate_field",
    "scaled_shape",
    "spectral_field",
    "gaussian_bumps",
    "turbulence_field",
    "layered_field",
    "particle_density_field",
    "vortex_field",
]
