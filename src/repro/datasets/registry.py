"""Dataset registry: the four evaluated applications and their shapes.

Shapes follow the paper's Section IV-A, stored ``(z, y, x)`` with z the
axis the kernels decompose along:

* Hurricane ISABEL — 13 fields of 100×500×500,
* NYX cosmology — 6 fields of 512³,
* Scale-LETKF weather — 6 fields of 98×1200×1200,
* Miranda turbulence — 7 fields of 256×384×384.
"""

from __future__ import annotations

import math
import zlib
from dataclasses import dataclass

from repro.errors import DataIOError
from repro.datasets.fields import Dataset, Field
from repro.datasets.synthetic import (
    gaussian_bumps,
    layered_field,
    particle_density_field,
    spectral_field,
    turbulence_field,
    vortex_field,
)

__all__ = [
    "PAPER_SHAPES",
    "DATASET_NAMES",
    "DatasetInfo",
    "dataset_info",
    "generate_field",
    "generate_dataset",
    "scaled_shape",
]

#: (z, y, x) shapes from the paper's Section IV-A
PAPER_SHAPES: dict[str, tuple[int, int, int]] = {
    "hurricane": (100, 500, 500),
    "nyx": (512, 512, 512),
    "scale_letkf": (98, 1200, 1200),
    "miranda": (256, 384, 384),
}

DATASET_NAMES: tuple[str, ...] = tuple(PAPER_SHAPES)

#: field name -> generator class per application (names follow SDRBench)
_FIELD_CLASSES: dict[str, dict[str, str]] = {
    "hurricane": {
        "CLOUDf48": "bumps",
        "PRECIPf48": "bumps",
        "Pf48": "layered",
        "QCLOUDf48": "bumps",
        "QGRAUPf48": "bumps",
        "QICEf48": "bumps",
        "QRAINf48": "bumps",
        "QSNOWf48": "bumps",
        "QVAPORf48": "layered",
        "TCf48": "layered",
        "Uf48": "vortex_u",
        "Vf48": "vortex_v",
        "Wf48": "spectral",
    },
    "nyx": {
        "baryon_density": "density",
        "dark_matter_density": "density",
        "temperature": "density",
        "velocity_x": "spectral",
        "velocity_y": "spectral",
        "velocity_z": "spectral",
    },
    "scale_letkf": {
        "U": "spectral",
        "V": "spectral",
        "W": "spectral",
        "T": "layered",
        "P": "layered",
        "QV": "bumps",
    },
    "miranda": {
        "density": "turbulence",
        "diffusivity": "turbulence",
        "pressure": "turbulence",
        "velocityx": "turbulence",
        "velocityy": "turbulence",
        "velocityz": "turbulence",
        "viscocity": "turbulence",
    },
}

_DESCRIPTIONS = {
    "hurricane": "Hurricane ISABEL weather simulation (IEEE Vis 2004 contest)",
    "nyx": "NYX adaptive-mesh compressible cosmological hydrodynamics",
    "scale_letkf": "Scale-LETKF ensemble weather data assimilation",
    "miranda": "Miranda radiation-hydrodynamics large-eddy turbulence",
}


@dataclass(frozen=True)
class DatasetInfo:
    """Static catalogue entry for one application."""

    name: str
    shape: tuple[int, int, int]
    field_names: tuple[str, ...]
    description: str

    @property
    def n_fields(self) -> int:
        return len(self.field_names)

    @property
    def n_elements(self) -> int:
        nz, ny, nx = self.shape
        return nz * ny * nx

    @property
    def field_nbytes(self) -> int:
        return self.n_elements * 4


def dataset_info(name: str) -> DatasetInfo:
    """Catalogue entry by dataset name."""
    key = name.lower()
    if key not in PAPER_SHAPES:
        raise DataIOError(f"unknown dataset {name!r}; known: {DATASET_NAMES}")
    return DatasetInfo(
        name=key,
        shape=PAPER_SHAPES[key],
        field_names=tuple(_FIELD_CLASSES[key]),
        description=_DESCRIPTIONS[key],
    )


def scaled_shape(
    name: str, scale: float = 1.0, min_extent: int = 16
) -> tuple[int, int, int]:
    """The dataset's shape scaled isotropically (for CI-sized runs)."""
    if scale <= 0:
        raise ValueError("scale must be positive")
    shape = PAPER_SHAPES[name.lower()]
    return tuple(max(min_extent, math.ceil(s * scale)) for s in shape)  # type: ignore[return-value]


def generate_field(
    dataset: str,
    field_name: str,
    shape: tuple[int, int, int] | None = None,
    seed: int | None = None,
) -> Field:
    """Synthesise one field of one application."""
    info = dataset_info(dataset)
    classes = _FIELD_CLASSES[info.name]
    if field_name not in classes:
        raise DataIOError(
            f"dataset {dataset!r} has no field {field_name!r}; "
            f"known: {sorted(classes)}"
        )
    shape = tuple(shape) if shape is not None else info.shape
    if seed is None:
        # stable per-field seed so fields differ but runs reproduce
        # (zlib.crc32 is deterministic across processes, unlike hash())
        seed = zlib.crc32(f"{info.name}/{field_name}".encode()) % (2**31)
    kind = classes[field_name]
    if kind == "spectral":
        data = spectral_field(shape, slope=3.0, seed=seed)
    elif kind == "turbulence":
        data = turbulence_field(shape, seed=seed)
    elif kind == "layered":
        data = layered_field(shape, seed=seed)
    elif kind == "bumps":
        data = gaussian_bumps(shape, seed=seed)
    elif kind == "density":
        data = particle_density_field(shape, seed=seed)
    elif kind == "vortex_u":
        data = vortex_field(shape, component="u", seed=seed)
    elif kind == "vortex_v":
        data = vortex_field(shape, component="v", seed=seed)
    else:  # pragma: no cover - registry invariant
        raise DataIOError(f"unknown field class {kind!r}")
    return Field(name=field_name, data=data, description=f"{kind} stand-in")


def generate_dataset(
    name: str,
    scale: float = 1.0,
    n_fields: int | None = None,
    seed: int = 0,
) -> Dataset:
    """Synthesise an application dataset (optionally scaled / truncated)."""
    info = dataset_info(name)
    shape = scaled_shape(name, scale) if scale != 1.0 else info.shape
    names = info.field_names[: n_fields or info.n_fields]
    ds = Dataset(name=info.name, description=info.description)
    for i, field_name in enumerate(names):
        ds.add(generate_field(info.name, field_name, shape=shape, seed=seed + i))
    return ds
