"""Synthetic 3-D field generators.

Each generator produces a seeded, reproducible ``float32`` field of a
given smoothness/structure class, matched to the application whose
SDRBench data it stands in for:

* :func:`spectral_field` — Gaussian random field with a power-law
  spectrum (general-purpose smooth scientific data);
* :func:`turbulence_field` — Kolmogorov-slope spectral field (Miranda
  large-eddy turbulence);
* :func:`layered_field` — vertically stratified atmosphere with
  spectral perturbations (Hurricane / Scale-LETKF weather states);
* :func:`gaussian_bumps` — localised coherent structures (cloud/moisture
  mixing-ratio style fields, mostly-zero with plumes);
* :func:`particle_density_field` — log-normal point-process density
  (NYX baryon/dark-matter density, heavy-tailed).

All generators return C-ordered arrays indexed ``(z, y, x)``.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ShapeError

__all__ = [
    "spectral_field",
    "turbulence_field",
    "layered_field",
    "gaussian_bumps",
    "particle_density_field",
    "vortex_field",
]


def _check_shape(shape: tuple[int, int, int]) -> tuple[int, int, int]:
    if len(shape) != 3 or min(shape) < 2:
        raise ShapeError(f"generators need a 3-D shape with extents >= 2, got {shape}")
    return tuple(int(s) for s in shape)  # type: ignore[return-value]


def spectral_field(
    shape: tuple[int, int, int],
    slope: float = 3.0,
    seed: int = 0,
    mean: float = 0.0,
    std: float = 1.0,
) -> np.ndarray:
    """Gaussian random field with spectrum ``P(k) ∝ |k|^-slope``.

    Larger ``slope`` gives smoother fields (scientific simulation output
    is typically slope 2.5-4, which is what makes it so compressible).
    """
    nz, ny, nx = _check_shape(shape)
    rng = np.random.default_rng(seed)
    noise = rng.standard_normal((nz, ny, nx))
    spectrum = np.fft.rfftn(noise)
    kz = np.fft.fftfreq(nz)[:, None, None]
    ky = np.fft.fftfreq(ny)[None, :, None]
    kx = np.fft.rfftfreq(nx)[None, None, :]
    k = np.sqrt(kz * kz + ky * ky + kx * kx)
    k[0, 0, 0] = np.inf  # kill the DC mode; mean is set explicitly
    spectrum *= k ** (-slope / 2.0)
    out = np.fft.irfftn(spectrum, s=(nz, ny, nx), axes=(0, 1, 2))
    sd = out.std()
    if sd > 0:
        out = out / sd * std
    return (out + mean).astype(np.float32)


def turbulence_field(
    shape: tuple[int, int, int], seed: int = 0, mean: float = 1.0, std: float = 0.25
) -> np.ndarray:
    """Kolmogorov-like turbulence (-5/3 energy slope → -11/3 3-D power)."""
    return spectral_field(shape, slope=11.0 / 3.0, seed=seed, mean=mean, std=std)


def layered_field(
    shape: tuple[int, int, int],
    seed: int = 0,
    base: float = 300.0,
    lapse: float = 60.0,
    perturbation: float = 4.0,
) -> np.ndarray:
    """Vertically stratified field: ``base - lapse * z/nz`` plus smooth
    spectral perturbations (a temperature/pressure-like weather state)."""
    nz, ny, nx = _check_shape(shape)
    profile = base - lapse * (np.arange(nz) / max(nz - 1, 1))
    pert = spectral_field(shape, slope=3.2, seed=seed, std=perturbation)
    return (profile[:, None, None] + pert).astype(np.float32)


def gaussian_bumps(
    shape: tuple[int, int, int],
    n_bumps: int = 12,
    seed: int = 0,
    amplitude: float = 1.0,
    background: float = 0.0,
) -> np.ndarray:
    """Sparse localised plumes (mixing-ratio-like fields, mostly zero)."""
    nz, ny, nx = _check_shape(shape)
    if n_bumps < 1:
        raise ValueError("n_bumps must be >= 1")
    rng = np.random.default_rng(seed)
    z = np.arange(nz)[:, None, None]
    y = np.arange(ny)[None, :, None]
    x = np.arange(nx)[None, None, :]
    out = np.full((nz, ny, nx), background, dtype=np.float64)
    for _ in range(n_bumps):
        cz, cy, cx = rng.uniform(0, nz), rng.uniform(0, ny), rng.uniform(0, nx)
        sz = rng.uniform(0.05, 0.2) * nz
        sy = rng.uniform(0.05, 0.2) * ny
        sx = rng.uniform(0.05, 0.2) * nx
        amp = amplitude * rng.uniform(0.3, 1.0)
        out += amp * np.exp(
            -((z - cz) ** 2) / (2 * sz**2)
            - ((y - cy) ** 2) / (2 * sy**2)
            - ((x - cx) ** 2) / (2 * sx**2)
        )
    return out.astype(np.float32)


def particle_density_field(
    shape: tuple[int, int, int], seed: int = 0, contrast: float = 2.0
) -> np.ndarray:
    """Log-normal density field (cosmological matter density stand-in).

    Exponentiating a smooth Gaussian random field gives the heavy-tailed,
    strictly positive distribution characteristic of the NYX density
    fields (a few dense halos, vast near-empty voids).
    """
    base = spectral_field(shape, slope=2.8, seed=seed, std=contrast)
    return np.exp(base).astype(np.float32)


def vortex_field(
    shape: tuple[int, int, int],
    component: str = "u",
    seed: int = 0,
    max_wind: float = 60.0,
    core_radius: float = 0.12,
) -> np.ndarray:
    """Rankine-vortex wind component (hurricane U/V velocity stand-in).

    Tangential speed grows linearly inside the core radius and decays as
    1/r outside (the classic idealised tropical-cyclone profile), riding
    on a smooth environmental flow.  ``component`` selects the "u"
    (x-direction) or "v" (y-direction) wind.
    """
    nz, ny, nx = _check_shape(shape)
    if component not in ("u", "v"):
        raise ValueError(f"component must be 'u' or 'v', got {component!r}")
    rng = np.random.default_rng(seed)
    # storm centre drifts slightly with height (vertical tilt)
    cy0, cx0 = rng.uniform(0.35, 0.65, size=2)
    tilt = rng.uniform(-0.08, 0.08, size=2)
    z = np.arange(nz)[:, None, None] / max(nz - 1, 1)
    y = np.arange(ny)[None, :, None] / max(ny - 1, 1)
    x = np.arange(nx)[None, None, :] / max(nx - 1, 1)
    dy = y - (cy0 + tilt[0] * z)
    dx = x - (cx0 + tilt[1] * z)
    r = np.sqrt(dy * dy + dx * dx)
    # Rankine profile, weakening with altitude
    speed = np.where(
        r <= core_radius,
        max_wind * r / core_radius,
        max_wind * core_radius / np.maximum(r, 1e-9),
    ) * (1.0 - 0.5 * z)
    # unit tangential direction (counter-clockwise)
    rr = np.maximum(r, 1e-9)
    tangential_u = -dy / rr
    tangential_v = dx / rr
    background = spectral_field(shape, slope=3.2, seed=seed + 7, std=3.0)
    wind = speed * (tangential_u if component == "u" else tangential_v)
    return (wind + background).astype(np.float32)
