"""Containers for scientific fields and multi-field datasets."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import ShapeError

__all__ = ["Field", "Dataset"]


@dataclass
class Field:
    """One named 3-D float field of a scientific dataset."""

    name: str
    data: np.ndarray
    units: str = ""
    description: str = ""

    def __post_init__(self) -> None:
        self.data = np.asarray(self.data)
        if self.data.ndim != 3:
            raise ShapeError(
                f"field {self.name!r} must be 3-D, got shape {self.data.shape}"
            )
        if self.data.dtype not in (np.float32, np.float64):
            # floats keep their precision (float64 bundles round-trip);
            # everything else is normalised to the SDRBench default
            self.data = self.data.astype(np.float32)

    @property
    def shape(self) -> tuple[int, int, int]:
        return self.data.shape  # type: ignore[return-value]

    @property
    def nbytes(self) -> int:
        return self.data.nbytes

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Field({self.name!r}, shape={self.shape})"


@dataclass
class Dataset:
    """A named collection of fields (one SDRBench application)."""

    name: str
    fields: list[Field] = field(default_factory=list)
    description: str = ""

    def __iter__(self):
        return iter(self.fields)

    def __len__(self) -> int:
        return len(self.fields)

    def __getitem__(self, key: str | int) -> Field:
        if isinstance(key, int):
            return self.fields[key]
        for f in self.fields:
            if f.name == key:
                return f
        raise KeyError(f"dataset {self.name!r} has no field {key!r}")

    @property
    def field_names(self) -> list[str]:
        return [f.name for f in self.fields]

    @property
    def nbytes(self) -> int:
        return sum(f.nbytes for f in self.fields)

    def add(self, field_: Field) -> None:
        if field_.name in self.field_names:
            raise ValueError(f"duplicate field name {field_.name!r}")
        self.fields.append(field_)
