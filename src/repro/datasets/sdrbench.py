"""SDRBench integration: real files when present, synthetic otherwise.

The paper's datasets come from SDRBench (https://sdrbench.github.io).
When the downloads exist locally — under ``SDRBENCH_DIR`` or an explicit
``root`` — this module loads the real binaries (headerless little-endian
float32, validated against the catalogue shapes).  Without them it falls
back to the synthetic stand-ins, reporting which source was used so
results are never silently mixed.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from pathlib import Path

from repro.datasets.fields import Field
from repro.datasets.registry import dataset_info, generate_field
from repro.errors import DataIOError
from repro.io.raw import read_raw

__all__ = ["SDRBENCH_ENV", "FieldSource", "locate_field_file", "load_field"]

SDRBENCH_ENV = "SDRBENCH_DIR"

#: filename candidates per dataset; SDRBench archives name raw fields
#: ``<field>.f32`` or ``<field>.dat`` inside per-application directories
_SUFFIXES = (".f32", ".dat", ".bin")


@dataclass(frozen=True)
class FieldSource:
    """A loaded field plus provenance."""

    field: Field
    source: str  # "sdrbench" or "synthetic"
    path: Path | None


def _candidate_dirs(dataset: str, root: str | Path | None) -> list[Path]:
    dirs = []
    if root is not None:
        dirs.append(Path(root))
        dirs.append(Path(root) / dataset)
    env = os.environ.get(SDRBENCH_ENV)
    if env:
        dirs.append(Path(env))
        dirs.append(Path(env) / dataset)
    return dirs


def locate_field_file(
    dataset: str, field_name: str, root: str | Path | None = None
) -> Path | None:
    """Find a real SDRBench binary for one field, or ``None``."""
    for directory in _candidate_dirs(dataset, root):
        if not directory.is_dir():
            continue
        for suffix in _SUFFIXES:
            candidate = directory / f"{field_name}{suffix}"
            if candidate.is_file():
                return candidate
    return None


def load_field(
    dataset: str,
    field_name: str,
    root: str | Path | None = None,
    scale: float = 1.0,
    require_real: bool = False,
) -> FieldSource:
    """Load one application field, preferring real SDRBench data.

    Real files are only used at the catalogue's native shape
    (``scale == 1.0``); scaled requests always synthesise.  With
    ``require_real=True`` a missing/invalid file raises instead of
    falling back.
    """
    info = dataset_info(dataset)
    if field_name not in info.field_names:
        raise DataIOError(
            f"dataset {dataset!r} has no field {field_name!r}; "
            f"known: {list(info.field_names)}"
        )

    if scale == 1.0:
        path = locate_field_file(info.name, field_name, root)
        if path is not None:
            data = read_raw(path, info.shape)  # validates the size
            return FieldSource(
                field=Field(name=field_name, data=data,
                            description="SDRBench"),
                source="sdrbench",
                path=path,
            )
        if require_real:
            searched = [str(d) for d in _candidate_dirs(info.name, root)]
            raise DataIOError(
                f"no SDRBench file for {dataset}/{field_name}; searched "
                f"{searched} (set ${SDRBENCH_ENV} or pass root=)"
            )
    elif require_real:
        raise DataIOError("require_real is only meaningful at scale=1.0")

    from repro.datasets.registry import scaled_shape

    shape = info.shape if scale == 1.0 else scaled_shape(info.name, scale)
    return FieldSource(
        field=generate_field(info.name, field_name, shape=shape),
        source="synthetic",
        path=None,
    )
