"""Runtime profiling — the reproduction of the paper's Table II.

For each pattern × dataset shape, reports the kernel's register demand
per thread block, shared memory per block, sequential iterations per
thread, and the assigned/concurrent thread blocks per SM.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config.defaults import default_config
from repro.config.schema import CheckerConfig
from repro.core.frameworks import device_by_name
from repro.gpusim.occupancy import occupancy_for
from repro.kernels.pattern1 import plan_pattern1
from repro.kernels.pattern2 import plan_pattern2
from repro.kernels.pattern3 import plan_pattern3

__all__ = ["ProfileRow", "runtime_profile"]


@dataclass(frozen=True)
class ProfileRow:
    """One Table II row: a pattern's resource profile on one dataset."""

    dataset: str
    pattern: int
    regs_per_block: int
    smem_per_block: int
    iters_per_thread: int
    blocks_per_sm: int
    concurrent_blocks_per_sm: int

    def formatted(self) -> dict[str, str]:
        """Human-readable cells matching the paper's column style."""

        def _k(v: int) -> str:
            return f"{v / 1000:.1f}k" if v >= 1000 else str(v)

        return {
            "dataset": self.dataset,
            "pattern": f"Pattern-{self.pattern}",
            "Regs/TB": _k(self.regs_per_block),
            "SMem/TB": f"{self.smem_per_block / 1024:.1f}KB",
            "Iters/thread": _k(self.iters_per_thread),
            "TB(cncr.)/SM": f"{self.blocks_per_sm}({self.concurrent_blocks_per_sm})",
        }


def runtime_profile(
    shapes: dict[str, tuple[int, int, int]],
    config: CheckerConfig | None = None,
) -> list[ProfileRow]:
    """Profile every pattern on every dataset shape (Table II)."""
    config = config or default_config()
    device = device_by_name(config.device)
    planners = {
        1: lambda s: plan_pattern1(s, config.pattern1),
        2: lambda s: plan_pattern2(s, config.pattern2),
        3: lambda s: plan_pattern3(s, config.pattern3),
    }
    rows: list[ProfileRow] = []
    for pattern in sorted(config.patterns):
        for dataset, shape in shapes.items():
            stats = planners[pattern](shape)
            occ = occupancy_for(device, stats)
            rows.append(
                ProfileRow(
                    dataset=dataset,
                    pattern=pattern,
                    regs_per_block=stats.regs_per_block,
                    smem_per_block=stats.smem_per_block,
                    iters_per_thread=stats.iters_per_thread,
                    blocks_per_sm=occ.blocks_per_sm,
                    concurrent_blocks_per_sm=occ.concurrent_blocks_per_sm,
                )
            )
    return rows
