"""Acceptance criteria: turning assessments into decisions.

Z-checker exists so users can decide whether a lossy configuration is
*acceptable* for their science.  This module encodes that final step:
declarative thresholds over the assessment report, evaluated into a
verdict that lists exactly which criteria failed and by how much.

Two presets bracket common practice: :meth:`AcceptanceCriteria.lenient`
(visualisation-grade) and :meth:`AcceptanceCriteria.strict`
(analysis-grade, following the acceptability guidance in the Z-checker
literature: PSNR ≥ 60 dB, Pearson ≥ 0.99999, near-white error
autocorrelation).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from repro.core.report import AssessmentReport
from repro.errors import CheckerError

__all__ = ["AcceptanceCriteria", "CriterionResult", "Verdict"]


@dataclass(frozen=True)
class CriterionResult:
    """One evaluated threshold."""

    name: str
    threshold: float
    observed: float
    passed: bool

    def describe(self) -> str:
        status = "PASS" if self.passed else "FAIL"
        return f"[{status}] {self.name}: observed {self.observed:.6g} vs {self.threshold:.6g}"


@dataclass
class Verdict:
    """Outcome of evaluating all configured criteria."""

    results: list[CriterionResult] = field(default_factory=list)

    @property
    def passed(self) -> bool:
        return all(r.passed for r in self.results)

    @property
    def failures(self) -> list[CriterionResult]:
        return [r for r in self.results if not r.passed]

    def describe(self) -> str:
        lines = [r.describe() for r in self.results]
        lines.append(
            f"verdict: {'ACCEPTABLE' if self.passed else 'NOT ACCEPTABLE'} "
            f"({len(self.results) - len(self.failures)}/{len(self.results)} "
            f"criteria met)"
        )
        return "\n".join(lines)


@dataclass(frozen=True)
class AcceptanceCriteria:
    """Thresholds over a report's metrics; ``None`` disables a check."""

    min_psnr: float | None = None
    min_ssim: float | None = None
    max_nrmse: float | None = None
    min_pearson: float | None = None
    #: |AC(τ)| for τ >= 1 must stay below this (white-noise-like errors)
    max_abs_autocorr: float | None = None
    #: pointwise |error| must stay below this (the bound actually held)
    max_abs_err: float | None = None
    #: spectrum must stay faithful up to this normalised frequency
    min_noise_frequency: float | None = None

    @classmethod
    def lenient(cls) -> "AcceptanceCriteria":
        """Visualisation-grade acceptability."""
        return cls(min_psnr=40.0, min_ssim=0.98, max_nrmse=1e-2)

    @classmethod
    def strict(cls) -> "AcceptanceCriteria":
        """Analysis-grade acceptability (Z-checker guidance)."""
        return cls(
            min_psnr=60.0,
            min_ssim=0.999,
            max_nrmse=1e-3,
            min_pearson=0.99999,
            max_abs_autocorr=0.1,
        )

    def evaluate(self, report: AssessmentReport) -> Verdict:
        """Check every configured criterion against one report."""
        scalars = report.scalars()
        verdict = Verdict()

        def need(key: str) -> float:
            if key not in scalars:
                raise CheckerError(
                    f"criterion needs metric {key!r}, which the report "
                    f"does not contain (was its pattern enabled?)"
                )
            return float(scalars[key])

        def check(name, threshold, observed, ok):
            verdict.results.append(
                CriterionResult(
                    name=name,
                    threshold=threshold,
                    observed=observed,
                    passed=bool(ok),
                )
            )

        if self.min_psnr is not None:
            psnr = need("psnr")
            ok = (not math.isnan(psnr)) and psnr >= self.min_psnr
            check("psnr >=", self.min_psnr, psnr, ok)
        if self.min_ssim is not None:
            ssim = need("ssim")
            check("ssim >=", self.min_ssim, ssim, ssim >= self.min_ssim)
        if self.max_nrmse is not None:
            nrmse = need("nrmse")
            ok = (not math.isnan(nrmse)) and nrmse <= self.max_nrmse
            check("nrmse <=", self.max_nrmse, nrmse, ok)
        if self.min_pearson is not None:
            rho = need("pearson")
            ok = (not math.isnan(rho)) and rho >= self.min_pearson
            check("pearson >=", self.min_pearson, rho, ok)
        if self.max_abs_autocorr is not None:
            if report.pattern2 is None:
                raise CheckerError(
                    "autocorrelation criterion needs pattern 2 enabled"
                )
            ac = np.asarray(report.pattern2.autocorrelation)
            worst = float(np.abs(ac[1:]).max()) if len(ac) > 1 else 0.0
            check(
                "max |autocorr(tau>=1)| <=",
                self.max_abs_autocorr,
                worst,
                worst <= self.max_abs_autocorr,
            )
        if self.max_abs_err is not None:
            worst = max(abs(need("min_err")), abs(need("max_err")))
            check("max |err| <=", self.max_abs_err, worst,
                  worst <= self.max_abs_err)
        if self.min_noise_frequency is not None:
            freq = need("spectral_noise_frequency")
            check(
                "spectral noise frequency >=",
                self.min_noise_frequency,
                freq,
                freq >= self.min_noise_frequency,
            )
        if not verdict.results:
            raise CheckerError("no acceptance criteria were configured")
        return verdict
