"""Dataset-level batch assessment (whole-application runs).

The paper evaluates per application, averaging over every field of each
dataset ("We show the average performance calculated over all fields for
each dataset in Figure 10").  :class:`BatchAssessment` runs one
compressor over all fields of a :class:`~repro.datasets.fields.Dataset`,
keeps the per-field reports, and aggregates the application-level
summary the paper's figures are built from.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from repro.config.schema import CheckerConfig
from repro.core.checker import CuZChecker
from repro.core.compare import assess_compressor
from repro.core.report import AssessmentReport
from repro.datasets.fields import Dataset
from repro.errors import CheckerError
from repro.telemetry.tracer import NULL_TRACER, Tracer

__all__ = ["FieldSummary", "BatchAssessment", "assess_dataset"]


@dataclass(frozen=True)
class FieldSummary:
    """One field's headline numbers."""

    field_name: str
    compression_ratio: float
    psnr: float
    ssim: float
    nrmse: float
    max_abs_err: float
    pearson: float


@dataclass
class BatchAssessment:
    """All per-field reports of one application plus aggregates."""

    dataset_name: str
    reports: dict[str, AssessmentReport] = field(default_factory=dict)
    #: per-field failure messages when the batch ran with error isolation
    #: (``on_error="record"``): a failing field degrades to an entry here
    #: instead of aborting the whole application run
    errors: dict[str, str] = field(default_factory=dict)

    def summaries(self) -> list[FieldSummary]:
        rows = []
        for name, report in self.reports.items():
            s = report.scalars()
            rows.append(
                FieldSummary(
                    field_name=name,
                    compression_ratio=s.get("compression_ratio", math.nan),
                    psnr=s["psnr"],
                    ssim=s.get("ssim", math.nan),
                    nrmse=s["nrmse"],
                    max_abs_err=max(abs(s["min_err"]), abs(s["max_err"])),
                    pearson=s.get("pearson", math.nan),
                )
            )
        return rows

    # -- application-level aggregates (the paper's per-dataset numbers) --

    @property
    def n_fields(self) -> int:
        return len(self.reports)

    def mean_psnr(self) -> float:
        finite = [
            r.scalars()["psnr"]
            for r in self.reports.values()
            if math.isfinite(r.scalars()["psnr"])
        ]
        if not finite:
            return math.inf
        return float(np.mean(finite))

    def min_ssim(self) -> float:
        """The worst field drives acceptability decisions."""
        vals = [r.scalars().get("ssim") for r in self.reports.values()]
        vals = [v for v in vals if v is not None]
        if not vals:
            raise CheckerError("no SSIM values in this batch")
        return min(vals)

    def overall_ratio(self) -> float:
        """Size-weighted compression ratio across all fields."""
        total_orig = 0.0
        total_comp = 0.0
        for report in self.reports.values():
            s = report.scalars()
            if "compression_ratio" not in s:
                raise CheckerError("batch was not run through a compressor")
            nz, ny, nx = report.shape
            nbytes = nz * ny * nx * 4
            total_orig += nbytes
            total_comp += nbytes / s["compression_ratio"]
        return total_orig / total_comp

    def mean_speedup(self, baseline: str) -> float:
        """Average modelled cuZC speedup over a baseline (Fig. 10 style)."""
        values = []
        for report in self.reports.values():
            if baseline in report.timings and "cuZC" in report.timings:
                values.append(report.speedup(baseline))
        if not values:
            raise CheckerError(
                f"no {baseline} timings in this batch; pass "
                "with_baselines=True to assess_dataset"
            )
        return float(np.mean(values))


def assess_dataset(
    dataset: Dataset,
    compressor,
    config: CheckerConfig | None = None,
    with_baselines: bool = False,
    on_error: str = "raise",
    tracer: Tracer | None = None,
    executor: str | None = None,
    workers: int | None = None,
    session=None,
) -> BatchAssessment:
    """Compress + assess every field of an application dataset.

    ``on_error="record"`` isolates per-field failures: the exception is
    stored in :attr:`BatchAssessment.errors` under the field name and the
    remaining fields still run.  With a ``tracer``, the batch records one
    ``field`` span per field with the full plan → step → kernel
    hierarchy nested underneath.

    ``executor`` (argument or ``config.executor``) routes the batch
    through :func:`repro.parallel.parallel_assess_dataset` — ``"auto"``
    picks the process pool when the host can scale it; the default stays
    the historical serial loop.  A ``session``
    (:class:`~repro.service.session.CheckerSession`) supplies the warm
    checker instead of building a fresh one, so repeated batches reuse
    plans, dispatch decisions, and scratch buffers.
    """
    if on_error not in ("raise", "record"):
        raise CheckerError(f"on_error must be 'raise' or 'record', got {on_error!r}")
    if len(dataset) == 0:
        raise CheckerError(f"dataset {dataset.name!r} has no fields")
    chosen = executor or (config.executor if config is not None else "")
    if chosen and chosen != "serial":
        from repro.parallel.executor import parallel_assess_dataset

        return parallel_assess_dataset(
            dataset,
            compressor,
            config=config,
            with_baselines=with_baselines,
            workers=workers,
            on_error=on_error,
            tracer=tracer,
            executor=chosen,
            session=session,
        )
    if tracer is None:
        tracer = session.tracer if session is not None else NULL_TRACER
    # one checker (and therefore one ExecutionPlan + one config.validate())
    # serves every field of the application; a session makes that checker
    # persistent across whole batch calls
    if session is not None:
        checker = session.checker_for(config, with_baselines)
    else:
        checker = CuZChecker(
            config=config, with_baselines=with_baselines, tracer=tracer
        )
    batch = BatchAssessment(dataset_name=dataset.name)
    with tracer.span(f"batch:{dataset.name}", category="batch", fields=len(dataset)):
        for f in dataset:
            try:
                with tracer.span(f.name, category="field", bytes=f.data.nbytes):
                    batch.reports[f.name] = assess_compressor(
                        f.data, compressor, checker=checker
                    )
            except Exception as exc:  # noqa: BLE001 — isolation is the point
                if on_error == "raise":
                    raise
                batch.errors[f.name] = f"{type(exc).__name__}: {exc}"
    return batch
