"""Output engine: render assessment reports as text, JSON, and .dat files."""

from __future__ import annotations

import json
import math
from pathlib import Path

import numpy as np

from repro.core.report import AssessmentReport
from repro.viz.gnuplot import write_series

__all__ = ["report_to_text", "write_report_json", "write_report_dats"]


def _fmt(value: float) -> str:
    if isinstance(value, float) and not math.isfinite(value):
        return str(value)
    if isinstance(value, float):
        return f"{value:.6g}"
    return str(value)


def report_to_text(report: AssessmentReport) -> str:
    """Human-readable summary of one assessment."""
    lines = [
        "cuZ-Checker assessment report",
        f"  shape: {report.shape}  "
        f"({report.shape[0] * report.shape[1] * report.shape[2]:,} elements)",
        "",
        "  metrics:",
    ]
    for name, value in report.scalars().items():  # Table-I order
        lines.append(f"    {name:<22} {_fmt(value)}")
    if report.pattern2 is not None:
        ac = np.asarray(report.pattern2.autocorrelation)
        shown = ", ".join(f"{v:.4f}" for v in ac[: min(len(ac), 6)])
        lines.append(f"    {'autocorrelation':<22} [{shown}{', ...' if len(ac) > 6 else ''}]")
    if report.timings:
        lines.append("")
        lines.append("  modelled execution times:")
        for fw, timing in report.timings.items():
            per_pattern = "  ".join(
                f"P{p}={s * 1e3:.3f}ms" for p, s in timing.pattern_seconds.items()
            )
            lines.append(
                f"    {fw:<7} total={timing.total_seconds * 1e3:.3f}ms  {per_pattern}"
            )
        if "ompZC" in report.timings and "cuZC" in report.timings:
            lines.append(
                f"    speedup vs ompZC: {report.speedup('ompZC'):.1f}x"
            )
        if "moZC" in report.timings and "cuZC" in report.timings:
            lines.append(f"    speedup vs moZC:  {report.speedup('moZC'):.2f}x")
    return "\n".join(lines)


def write_report_json(report: AssessmentReport, path: str | Path) -> Path:
    """Serialise the report to JSON."""
    path = Path(path)
    path.write_text(json.dumps(report.to_dict(), indent=2))
    return path


def write_report_dats(report: AssessmentReport, directory: str | Path) -> list[Path]:
    """Export the report's series (PDFs, autocorrelation) as .dat files."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    written: list[Path] = []
    if report.pattern1 is not None and report.pattern1.err_pdf is not None:
        pdf = report.pattern1.err_pdf
        written.append(
            write_series(
                directory / "err_pdf.dat",
                {"error": pdf.bin_centers, "density": pdf.density},
                comment="compression error PDF",
            )
        )
    if report.pattern1 is not None and report.pattern1.pwr_err_pdf is not None:
        pdf = report.pattern1.pwr_err_pdf
        written.append(
            write_series(
                directory / "pwr_err_pdf.dat",
                {"rel_error": pdf.bin_centers, "density": pdf.density},
                comment="pointwise relative error PDF",
            )
        )
    if report.pattern2 is not None:
        ac = np.asarray(report.pattern2.autocorrelation)
        written.append(
            write_series(
                directory / "autocorrelation.dat",
                {"lag": np.arange(len(ac), dtype=float), "ac": ac},
                comment="spatial autocorrelation of compression errors",
            )
        )
    return written
