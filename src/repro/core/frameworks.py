"""Performance models of the three assessment frameworks.

The paper compares:

* **cuZC** — the pattern-oriented cuZ-Checker (this work): one fused
  cooperative kernel per pattern;
* **moZC** — the metric-oriented GPU baseline: one kernel pipeline per
  metric, CUB reductions, no fusion, no FIFO;
* **ompZC** — the OpenMP-parallelised original Z-checker on the 20-core
  Xeon host: one scalar pass per metric.

Each framework turns a dataset shape + :class:`~repro.config.CheckerConfig`
into an execution-time estimate per pattern via the calibrated models in
:mod:`repro.gpusim`.  Functional metric *values* are identical across
frameworks (the paper's correctness check) and are produced by
:class:`repro.core.checker.CuZChecker`.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field

from repro.errors import CheckerError
from repro.config.schema import CheckerConfig
from repro.gpusim.costmodel import kernel_time, kernels_time
from repro.gpusim.cpu import CPU_CYCLES_PER_ELEM, CpuWorkload, cpu_workload_time
from repro.gpusim.device import A100, V100, XEON_6148, CpuSpec, DeviceSpec
from repro.kernels.metric_oriented import (
    plan_mo_pattern1,
    plan_mo_pattern2,
    plan_mo_pattern3,
)
from repro.kernels.pattern1 import plan_pattern1
from repro.kernels.pattern2 import plan_pattern2
from repro.kernels.pattern3 import plan_pattern3
from repro.metrics.base import PATTERN1_METRICS

__all__ = [
    "AssessmentFramework",
    "CuZC",
    "MoZC",
    "OmpZC",
    "FrameworkTiming",
    "get_framework",
    "device_by_name",
]

FLOAT_BYTES = 4

_DEVICES: dict[str, DeviceSpec] = {"V100": V100, "A100": A100}


def device_by_name(name: str) -> DeviceSpec:
    try:
        return _DEVICES[name]
    except KeyError:
        raise CheckerError(
            f"unknown device {name!r}; known: {sorted(_DEVICES)}"
        ) from None


@dataclass(frozen=True)
class FrameworkTiming:
    """Per-pattern time estimate of one framework on one dataset shape."""

    framework: str
    shape: tuple[int, int, int]
    pattern_seconds: dict[int, float] = field(default_factory=dict)

    @property
    def n_elements(self) -> int:
        nz, ny, nx = self.shape
        return nz * ny * nx

    @property
    def bytes_processed(self) -> int:
        """Input bytes the assessment consumes: original + decompressed."""
        return 2 * self.n_elements * FLOAT_BYTES

    @property
    def total_seconds(self) -> float:
        return sum(self.pattern_seconds.values())

    def throughput(self, pattern: int | None = None) -> float:
        """Paper-style throughput (bytes/s): input bytes over time."""
        t = self.total_seconds if pattern is None else self.pattern_seconds[pattern]
        if t <= 0:
            raise CheckerError("cannot compute throughput of a zero-time run")
        return self.bytes_processed / t


class AssessmentFramework(abc.ABC):
    """Common interface of the three performance models."""

    name: str

    @abc.abstractmethod
    def pattern_seconds(
        self, pattern: int, shape: tuple[int, int, int], config: CheckerConfig
    ) -> float:
        """Estimated time to run one pattern's metrics on ``shape``."""

    def estimate(
        self, shape: tuple[int, int, int], config: CheckerConfig | None = None
    ) -> FrameworkTiming:
        """Time estimate for all patterns enabled in ``config``.

        Estimates are memoised per ``(shape, config)`` —
        :class:`CheckerConfig` is frozen/hashable — so batch assessments
        that reuse one checker over many same-shaped fields build each
        execution plan once instead of once per field.  The configuration
        is assumed already validated (plan construction validates it
        exactly once per run).
        """
        from repro.config.defaults import default_config

        config = config or default_config()
        key = (tuple(shape), config)
        cache = self.__dict__.setdefault("_estimate_cache", {})
        if key not in cache:
            seconds = {
                p: self.pattern_seconds(p, shape, config)
                for p in config.patterns
            }
            cache[key] = FrameworkTiming(
                framework=self.name, shape=tuple(shape), pattern_seconds=seconds
            )
        return cache[key]


class CuZC(AssessmentFramework):
    """The pattern-oriented cuZ-Checker (one fused kernel per pattern)."""

    name = "cuZC"

    def pattern_seconds(self, pattern, shape, config):
        device = device_by_name(config.device)
        if pattern == 1:
            return kernel_time(plan_pattern1(shape, config.pattern1), device).total
        if pattern == 2:
            return kernel_time(plan_pattern2(shape, config.pattern2), device).total
        if pattern == 3:
            return kernel_time(plan_pattern3(shape, config.pattern3), device).total
        raise CheckerError(f"unknown pattern {pattern}")


class MoZC(AssessmentFramework):
    """The metric-oriented GPU baseline (one kernel pipeline per metric)."""

    name = "moZC"

    def pattern_seconds(self, pattern, shape, config):
        device = device_by_name(config.device)
        if pattern == 1:
            return kernels_time(plan_mo_pattern1(shape, config.pattern1), device)
        if pattern == 2:
            return kernels_time(plan_mo_pattern2(shape, config.pattern2), device)
        if pattern == 3:
            return kernels_time(plan_mo_pattern3(shape, config.pattern3), device)
        raise CheckerError(f"unknown pattern {pattern}")


class OmpZC(AssessmentFramework):
    """The OpenMP CPU baseline (one scalar pass per metric)."""

    name = "ompZC"

    def __init__(self, spec: CpuSpec = XEON_6148):
        self.spec = spec

    def workloads(
        self, pattern: int, shape: tuple[int, int, int], config: CheckerConfig
    ) -> list[CpuWorkload]:
        """The OpenMP passes one pattern costs (public for benchmarks)."""
        nz, ny, nx = shape
        n = nz * ny * nx
        pass_bytes = 2 * n * FLOAT_BYTES
        loads: list[CpuWorkload] = []
        if pattern == 1:
            for name in PATTERN1_METRICS:
                loads.append(
                    CpuWorkload(
                        name=name,
                        n_elements=n,
                        cycles_per_element=CPU_CYCLES_PER_ELEM[name],
                        bytes_streamed=pass_bytes,
                    )
                )
        elif pattern == 2:
            for order in config.pattern2.orders:
                key = f"derivative_order{order}"
                loads.append(
                    CpuWorkload(
                        name=key,
                        n_elements=n,
                        cycles_per_element=CPU_CYCLES_PER_ELEM[key],
                        bytes_streamed=pass_bytes,
                    )
                )
                summation = "divergence" if order == 1 else "laplacian"
                loads.append(
                    CpuWorkload(
                        name=summation,
                        n_elements=n,
                        cycles_per_element=CPU_CYCLES_PER_ELEM[summation],
                        bytes_streamed=pass_bytes,
                    )
                )
            if config.pattern2.max_lag >= 1:
                loads.append(
                    CpuWorkload(
                        name="err_moments",
                        n_elements=n,
                        cycles_per_element=20.0,
                        bytes_streamed=pass_bytes,
                    )
                )
                loads.append(
                    CpuWorkload(
                        name="autocorrelation",
                        n_elements=n,
                        cycles_per_element=CPU_CYCLES_PER_ELEM["autocorrelation"],
                        bytes_streamed=pass_bytes,
                        passes=config.pattern2.max_lag,
                    )
                )
        elif pattern == 3:
            w = config.pattern3.window
            step = config.pattern3.step
            # the scalar implementation recomputes each window from scratch
            per_elem = CPU_CYCLES_PER_ELEM["ssim"] * (w**3) / (step**3)
            loads.append(
                CpuWorkload(
                    name="ssim",
                    n_elements=n,
                    cycles_per_element=per_elem,
                    bytes_streamed=pass_bytes,
                )
            )
        else:
            raise CheckerError(f"unknown pattern {pattern}")
        return loads

    def pattern_seconds(self, pattern, shape, config):
        return cpu_workload_time(self.workloads(pattern, shape, config), self.spec)


_FRAMEWORKS = {"cuZC": CuZC, "moZC": MoZC, "ompZC": OmpZC}


def get_framework(name: str) -> AssessmentFramework:
    """Instantiate a framework model by paper abbreviation."""
    try:
        return _FRAMEWORKS[name]()
    except KeyError:
        raise CheckerError(
            f"unknown framework {name!r}; known: {sorted(_FRAMEWORKS)}"
        ) from None
