"""CuZChecker: the pattern-oriented assessment coordinator.

This is the reproduction of the paper's "GPU module coordinator": it
inspects the requested metrics, maps them onto the three computational
patterns (Table I), launches the corresponding fused kernel once per
pattern, and stitches the results — including the cross-pattern data
reuse where the autocorrelation normalisation consumes the error moments
the pattern-1 kernel already produced.
"""

from __future__ import annotations

import numpy as np

from repro.config.defaults import default_config
from repro.config.schema import CheckerConfig
from repro.core.frameworks import CuZC, FrameworkTiming, MoZC, OmpZC
from repro.core.report import AssessmentReport
from repro.core.workspace import MetricWorkspace
from repro.errors import ShapeError
from repro.kernels.pattern1 import execute_pattern1
from repro.kernels.pattern2 import execute_pattern2
from repro.kernels.pattern3 import execute_pattern3
from repro.metrics.base import METRIC_REGISTRY, Pattern
from repro.metrics.correlation import pearson
from repro.metrics.properties import data_properties
from repro.metrics.spectral import spectral_comparison

__all__ = ["CuZChecker"]

_PATTERN_IDS = {
    Pattern.GLOBAL_REDUCTION: 1,
    Pattern.STENCIL: 2,
    Pattern.SLIDING_WINDOW: 3,
}


class CuZChecker:
    """Pattern-oriented lossy compression assessment (the paper's cuZC).

    Parameters
    ----------
    config:
        Assessment configuration; defaults to the paper's evaluation
        setup (all metrics, autocorr lags ≤ 10, SSIM window 8 step 1).
    with_baselines:
        If true, reports also carry modelled moZC / ompZC timings so that
        speedups can be read directly off each report.
    """

    def __init__(
        self,
        config: CheckerConfig | None = None,
        with_baselines: bool = False,
    ):
        self.config = config or default_config()
        self.config.validate()
        self.with_baselines = with_baselines
        self._cuzc = CuZC()
        self._mozc = MoZC()
        self._ompzc = OmpZC()

    # -- coordinator ------------------------------------------------------

    def needed_patterns(self) -> tuple[int, ...]:
        """Patterns required by the configured metric selection."""
        enabled = set(self.config.patterns)
        if self.config.metrics == "all":
            return tuple(sorted(enabled))
        wanted = set()
        for name in self.config.metric_names:
            pattern = METRIC_REGISTRY[name].pattern
            pid = _PATTERN_IDS.get(pattern)
            if pid is not None:
                wanted.add(pid)
        return tuple(sorted(wanted & enabled))

    def assess(self, orig: np.ndarray, dec: np.ndarray) -> AssessmentReport:
        """Run the configured assessment on one data pair."""
        orig = np.asarray(orig)
        dec = np.asarray(dec)
        if orig.shape != dec.shape:
            raise ShapeError(
                f"original {orig.shape} and decompressed {dec.shape} differ"
            )
        if orig.ndim != 3:
            raise ShapeError(f"cuZ-Checker assesses 3-D fields, got {orig.shape}")

        report = AssessmentReport(shape=orig.shape, config=self.config)
        patterns = self.needed_patterns()

        # the fused host engine: one workspace shares every derived array
        # (error, squared error, element products, moments) across the
        # pattern kernels and the auxiliary metrics
        ws = (
            MetricWorkspace(orig, dec, pwr_floor=self.config.pattern1.pwr_floor)
            if self.config.fused
            else None
        )

        if 1 in patterns:
            report.pattern1, _ = execute_pattern1(
                orig, dec, self.config.pattern1, workspace=ws
            )
        if 2 in patterns:
            # cross-pattern reuse: error moments from the fused reductions
            err_mean = err_var = None
            if report.pattern1 is not None:
                err_mean = report.pattern1.avg_err
                err_var = max(
                    report.pattern1.mse - report.pattern1.avg_err**2, 0.0
                )
            report.pattern2, _ = execute_pattern2(
                orig,
                dec,
                self.config.pattern2,
                err_mean=err_mean,
                err_var=err_var,
                workspace=ws,
            )
        if 3 in patterns:
            report.pattern3, _ = execute_pattern3(
                orig, dec, self.config.pattern3, workspace=ws
            )

        if self.config.auxiliary:
            if ws is not None:
                # float32→float64 is exact, so handing the workspace's
                # cached views to the FFT is bit-identical and skips the
                # conversion spectral_comparison would otherwise redo
                spectral = spectral_comparison(ws.o64, ws.d64)
                props = ws.data_properties()
                pearson_r = ws.pearson()
            else:
                spectral = spectral_comparison(orig, dec)
                props = data_properties(orig)
                pearson_r = pearson(orig, dec)
            report.auxiliary.update(
                {
                    "pearson": pearson_r,
                    "entropy": props.entropy,
                    "mean": props.mean,
                    "std": props.std,
                    "spectral_mean_rel_err": spectral.mean_rel_err,
                    "spectral_noise_frequency": spectral.noise_frequency,
                }
            )

        report.timings["cuZC"] = self.estimate(orig.shape)
        if self.with_baselines:
            report.timings["moZC"] = self._mozc.estimate(orig.shape, self.config)
            report.timings["ompZC"] = self._ompzc.estimate(orig.shape, self.config)
        return report

    def estimate(self, shape: tuple[int, int, int]) -> FrameworkTiming:
        """Modelled cuZC execution time for a dataset shape."""
        return self._cuzc.estimate(shape, self.config)
