"""CuZChecker: the pattern-oriented assessment coordinator.

This is the reproduction of the paper's "GPU module coordinator": it
builds one :class:`~repro.engine.plan.ExecutionPlan` from the requested
metrics — mapping them onto the three computational patterns (Table I)
and wiring the cross-pattern data reuse where the autocorrelation
normalisation consumes the error moments the pattern-1 kernel already
produced — then executes the plan on the configured backend and attaches
the modelled framework timings.

On the fused-host backend, large 3-D fields additionally execute in the
cache-blocked tiled mode (``config.tiling``, see
:mod:`repro.engine.tiling`): z-slabs stream through every selected
pattern-1/2 reduction while cache-hot instead of materialising
whole-array intermediates per metric.
"""

from __future__ import annotations

import numpy as np

from typing import TYPE_CHECKING

from repro.config.defaults import default_config
from repro.config.schema import CheckerConfig
from repro.core.frameworks import CuZC, FrameworkTiming, MoZC, OmpZC
from repro.core.report import AssessmentReport
from repro.telemetry.tracer import NULL_TRACER, Tracer

if TYPE_CHECKING:  # imported lazily at runtime to avoid a package cycle
    from repro.engine.backends import Backend
    from repro.engine.plan import ExecutionPlan

__all__ = ["CuZChecker"]


class CuZChecker:
    """Pattern-oriented lossy compression assessment (the paper's cuZC).

    Parameters
    ----------
    config:
        Assessment configuration; defaults to the paper's evaluation
        setup (all metrics, autocorr lags ≤ 10, SSIM window 8 step 1).
    with_baselines:
        If true, reports also carry modelled moZC / ompZC timings so that
        speedups can be read directly off each report.
    backend:
        Execution backend override (name or instance); defaults to the
        plan's resolution of ``config.backend`` / ``config.fused``.
    tracer:
        Telemetry tracer every assessment records its span hierarchy
        into; defaults to the disabled no-op tracer.
    """

    def __init__(
        self,
        config: CheckerConfig | None = None,
        with_baselines: bool = False,
        backend: str | Backend | None = None,
        tracer: Tracer | None = None,
    ):
        from repro.engine.plan import build_plan

        self.config = config or default_config()
        # the plan validates the configuration exactly once; batch and
        # parallel drivers reuse this checker instead of re-validating
        self.plan: ExecutionPlan = build_plan(self.config, backend=backend)
        self.with_baselines = with_baselines
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self._backend_arg = backend
        # per-shape adaptive plans (dataclasses.replace of self.plan —
        # dispatch never re-validates the already-validated config)
        self._plans: dict[tuple, ExecutionPlan] = {}
        #: warm-state observability: how often the per-shape plan memo
        #: served an assessment without re-running dispatch (a resident
        #: session exports these through ``/metrics``)
        self.plan_cache_hits = 0
        self.plan_cache_misses = 0
        self._cuzc = CuZC()
        self._mozc = MoZC()
        self._ompzc = OmpZC()

    # -- coordinator ------------------------------------------------------

    def needed_patterns(self) -> tuple[int, ...]:
        """Patterns required by the configured metric selection."""
        return self.plan.patterns

    def assess(
        self,
        orig: np.ndarray,
        dec: np.ndarray,
        backend: str | Backend | None = None,
        tracer: Tracer | None = None,
        extras: dict | None = None,
    ) -> AssessmentReport:
        """Run the configured assessment on one data pair.

        The executing plan is re-targeted per input shape by the adaptive
        dispatcher (memoised per shape/dtype); an explicit ``backend``
        argument bypasses dispatch entirely — the caller asked for that
        backend, not for the cheapest one.
        """
        plan = self.plan
        if backend is None:
            arr = np.asarray(orig)
            if arr.ndim == 3:
                key = (arr.shape, arr.dtype.itemsize)
                plan = self._plans.get(key)
                if plan is None:
                    from repro.engine.dispatch import dispatch_plan

                    pinned = None
                    if self._backend_arg is not None or self.config.backend:
                        pinned = self.plan.backend
                    plan = dispatch_plan(
                        self.plan, arr.shape, arr.dtype.itemsize, pinned=pinned
                    )
                    self._plans[key] = plan
                    self.plan_cache_misses += 1
                else:
                    self.plan_cache_hits += 1
            else:
                plan = self.plan
        report = plan.execute(
            orig, dec, backend=backend,
            tracer=tracer if tracer is not None else self.tracer,
            extras=extras,
        )
        report.timings["cuZC"] = self.estimate(report.shape)
        if self.with_baselines:
            report.timings["moZC"] = self._mozc.estimate(report.shape, self.config)
            report.timings["ompZC"] = self._ompzc.estimate(report.shape, self.config)
        return report

    def explain(self, shape: tuple[int, int, int] | None = None) -> str:
        """Human-readable execution schedule (see ``repro explain``)."""
        return self.plan.explain(shape)

    def estimate(self, shape: tuple[int, int, int]) -> FrameworkTiming:
        """Modelled cuZC execution time for a dataset shape."""
        return self._cuzc.estimate(shape, self.config)
