"""Assessment core: checker, baselines, reports, and the compare API."""

from repro.core.frameworks import (
    AssessmentFramework,
    CuZC,
    MoZC,
    OmpZC,
    FrameworkTiming,
    get_framework,
)
from repro.core.checker import CuZChecker
from repro.core.compare import compare_data
from repro.core.report import AssessmentReport, MetricValue
from repro.core.profiles import runtime_profile, ProfileRow
from repro.core.batch import BatchAssessment, assess_dataset
from repro.core.streaming import StreamingChecker, StreamingResult
from repro.core.acceptance import AcceptanceCriteria, Verdict

__all__ = [
    "AssessmentFramework",
    "CuZC",
    "MoZC",
    "OmpZC",
    "FrameworkTiming",
    "get_framework",
    "CuZChecker",
    "compare_data",
    "AssessmentReport",
    "MetricValue",
    "runtime_profile",
    "ProfileRow",
    "BatchAssessment",
    "assess_dataset",
    "StreamingChecker",
    "StreamingResult",
    "AcceptanceCriteria",
    "Verdict",
]
