"""Shared metric workspace: the host-side analogue of kernel fusion.

The paper's central insight is that fusing all metrics of one pattern
into a single kernel lets one global read feed every reduction.  The
functional NumPy layer historically ignored that insight: every consumer
(pattern kernels, Pearson, spectral comparison, data properties)
independently recomputed ``dec - orig``, the squared error, the masked
pointwise ratios, and the value moments — a fresh full scan per metric
family.

:class:`MetricWorkspace` applies the same fusion principle to host
execution.  It wraps one original/decompressed pair and lazily
materialises every shared intermediate exactly once per assessment:

* derived arrays — ``err``, ``abs_err``, ``sq_err``, the element
  products ``o²``, ``d²``, ``o·d``, the pwr-error mask and the masked
  pointwise relative errors;
* moments — per-slice partial sums (mirroring the pattern-1 kernel's
  block partials) merged into the global sums/extrema all the scalar
  metrics derive from.

Consumers (``kernels/pattern1-3``, :mod:`repro.core.checker`,
:mod:`repro.core.compare`) accept an optional workspace and read the
cached arrays instead of rescanning the inputs.  The independent
references in :mod:`repro.metrics` are deliberately **not** routed
through the workspace — they remain the correctness oracle the fused
results are tested against.
"""

from __future__ import annotations

import math
import threading

import numpy as np

from repro.errors import ShapeError
from repro.metrics.error_stats import DEFAULT_PDF_BINS, ErrorStats, Pdf
from repro.metrics.properties import (
    DEFAULT_ENTROPY_BINS,
    DataProperties,
    entropy,
)
from repro.metrics.pwr_error import PwrErrorStats
from repro.metrics.rate_distortion import RateDistortion

__all__ = [
    "MetricWorkspace",
    "ScratchPool",
    "clear_scratch_pools",
    "default_scratch_pool",
    "finalize_rate_distortion",
    "histogram_pdf",
    "scratch_pool_bytes",
]


class ScratchPool:
    """Reusable buffer pool: steady-state assessment allocates nothing.

    Buffers are keyed by ``(tag, shape, dtype)`` and handed out as raw
    ``np.empty`` storage — callers must fully overwrite what they read.
    A pool must only serve one live consumer at a time (two workspaces
    sharing a pool would alias each other's arrays), which is why the
    engine wires it in explicitly instead of pooling by default: the
    backend creates one workspace per assessment, sequentially, so the
    previous assessment's buffers are always dead when reused.
    """

    def __init__(self):
        self._buffers: dict[tuple, np.ndarray] = {}

    def get(self, tag: str, shape: tuple[int, ...], dtype=np.float64) -> np.ndarray:
        key = (tag, tuple(shape), np.dtype(dtype))
        buf = self._buffers.get(key)
        if buf is None:
            buf = np.empty(shape, dtype=dtype)
            self._buffers[key] = buf
        return buf

    def nbytes(self) -> int:
        return sum(b.nbytes for b in self._buffers.values())

    def clear(self) -> None:
        self._buffers.clear()


_pool_local = threading.local()
#: every thread-local default pool ever created in this process, so a
#: long-lived owner (a :class:`~repro.service.session.CheckerSession`)
#: can report pooled bytes across worker threads and release them on
#: close without having to run code on each thread
_ALL_POOLS: list[ScratchPool] = []
_POOLS_LOCK = threading.Lock()


def default_scratch_pool() -> ScratchPool:
    """The thread's shared pool (one live consumer per thread at a time)."""
    pool = getattr(_pool_local, "pool", None)
    if pool is None:
        pool = _pool_local.pool = ScratchPool()
        with _POOLS_LOCK:
            _ALL_POOLS.append(pool)
    return pool


def scratch_pool_bytes() -> int:
    """Total bytes currently held by every thread's default pool."""
    with _POOLS_LOCK:
        return sum(pool.nbytes() for pool in _ALL_POOLS)


def clear_scratch_pools() -> int:
    """Release every default pool's buffers; returns the bytes freed.

    Buffers are only dropped, never unmapped under a live consumer: a
    workspace that checked an array out keeps its own reference, so an
    in-flight assessment on another thread finishes on the old storage
    while the pool starts fresh.
    """
    with _POOLS_LOCK:
        freed = sum(pool.nbytes() for pool in _ALL_POOLS)
        for pool in _ALL_POOLS:
            pool.clear()
    return freed


def finalize_rate_distortion(
    n: int, mse: float, value_range: float, var_o: float
) -> RateDistortion:
    """MSE + value range + signal variance -> the rate-distortion family.

    Shared by every fused consumer so the degenerate-case conventions
    (constant field, lossless reconstruction) cannot drift between paths.
    """
    rmse = math.sqrt(mse)
    if value_range == 0.0:
        nrmse = math.nan if mse > 0 else 0.0
        psnr = math.nan
    elif mse == 0.0:
        nrmse, psnr = 0.0, math.inf
    else:
        nrmse = rmse / value_range
        psnr = 20.0 * math.log10(value_range) - 10.0 * math.log10(mse)
    if mse == 0.0:
        snr = math.inf
    elif var_o == 0.0:
        snr = -math.inf
    else:
        snr = 10.0 * math.log10(var_o / mse)
    return RateDistortion(
        mse=mse,
        rmse=rmse,
        nrmse=nrmse,
        snr=snr,
        psnr=psnr,
        value_range=value_range,
    )


def histogram_pdf(vals: np.ndarray, lo: float, hi: float, bins: int) -> Pdf:
    """Density histogram with the kernels' degenerate-range conventions."""
    if vals.size == 0:
        edges = np.array([-1e-12, 1e-12])
        return Pdf(bin_edges=edges, density=np.array([1.0 / (edges[1] - edges[0])]))
    if lo == hi:
        eps = max(abs(lo), 1.0) * 1e-9 + 1e-300
        edges = np.array([lo - eps, hi + eps])
        return Pdf(bin_edges=edges, density=np.array([1.0 / (edges[1] - edges[0])]))
    hist, edges = np.histogram(vals, bins=bins, range=(lo, hi), density=True)
    return Pdf(bin_edges=edges, density=hist)


class MetricWorkspace:
    """Memoised cache of every intermediate one assessment needs.

    Works for any dimensionality; the per-slice partial sums additionally
    mirror the pattern-1 kernel's slice-per-block decomposition for 3-D
    fields (1-D/2-D inputs reduce over a single "slice").
    """

    def __init__(
        self,
        orig: np.ndarray,
        dec: np.ndarray,
        pwr_floor: float = 0.0,
        scratch: ScratchPool | None = None,
    ):
        orig = np.asarray(orig)
        dec = np.asarray(dec)
        if orig.shape != dec.shape:
            raise ShapeError(
                f"original {orig.shape} and decompressed {dec.shape} differ"
            )
        if orig.size == 0:
            raise ShapeError("cannot assess empty arrays")
        self.orig = orig
        self.dec = dec
        self.shape = orig.shape
        self.n = orig.size
        self.pwr_floor = pwr_floor
        self._scratch = scratch
        self._cache: dict[str, object] = {}

    def _get(self, key: str, build):
        if key not in self._cache:
            self._cache[key] = build()
        return self._cache[key]

    def _derived(self, key: str, fill) -> np.ndarray:
        """A full-size derived array: pooled storage when a scratch pool
        was wired in (``fill`` writes into the buffer via ``out=``),
        freshly allocated otherwise.  Values are identical either way —
        the pool only changes where the result lives."""

        def build():
            if self._scratch is None:
                out = np.empty(self.shape)
            else:
                out = self._scratch.get(f"ws.{key}", self.shape)
            fill(out)
            return out

        return self._get(key, build)

    def cached_nbytes(self) -> int:
        """Bytes held by materialised full-size intermediates (telemetry)."""
        return sum(
            v.nbytes for v in self._cache.values() if isinstance(v, np.ndarray)
        )

    # -- derived arrays (each materialised at most once) -------------------

    @property
    def o64(self) -> np.ndarray:
        return self._derived("o64", lambda out: np.copyto(out, self.orig))

    @property
    def d64(self) -> np.ndarray:
        return self._derived("d64", lambda out: np.copyto(out, self.dec))

    @property
    def err(self) -> np.ndarray:
        return self._derived(
            "err", lambda out: np.subtract(self.d64, self.o64, out=out)
        )

    @property
    def abs_err(self) -> np.ndarray:
        return self._derived("abs_err", lambda out: np.abs(self.err, out=out))

    @property
    def sq_err(self) -> np.ndarray:
        return self._derived(
            "sq_err", lambda out: np.multiply(self.err, self.err, out=out)
        )

    @property
    def o_sq(self) -> np.ndarray:
        return self._derived(
            "o_sq", lambda out: np.multiply(self.o64, self.o64, out=out)
        )

    @property
    def d_sq(self) -> np.ndarray:
        return self._derived(
            "d_sq", lambda out: np.multiply(self.d64, self.d64, out=out)
        )

    @property
    def od(self) -> np.ndarray:
        return self._derived(
            "od", lambda out: np.multiply(self.o64, self.d64, out=out)
        )

    @property
    def pwr_mask(self) -> np.ndarray:
        return self._get("pwr_mask", lambda: np.abs(self.o64) > self.pwr_floor)

    @property
    def pwr_vals(self) -> np.ndarray:
        """Flat signed pointwise relative errors at unmasked elements."""

        def build():
            mask = self.pwr_mask
            if not mask.any():
                return np.zeros(0)
            return self.err[mask] / self.o64[mask]

        return self._get("pwr_vals", build)

    @property
    def pwr_excluded(self) -> int:
        return self.n - int(self.pwr_vals.size)

    # -- fused moments -----------------------------------------------------

    @property
    def slice_partials(self) -> dict[str, np.ndarray]:
        """Per-slice partial sums (the pattern-1 block partials).

        Each value is a ``(nz,)`` array of one accumulator's per-z-slice
        sums; 1-D/2-D inputs collapse to a single slice.
        """

        def build():
            nz = self.shape[0] if len(self.shape) == 3 else 1

            def flat(a):
                return a.reshape(nz, -1)

            return {
                "sum_e": flat(self.err).sum(axis=1),
                "sum_abs_e": flat(self.abs_err).sum(axis=1),
                "sum_sq_e": flat(self.sq_err).sum(axis=1),
                "sum_o": flat(self.o64).sum(axis=1),
                "sum_sq_o": flat(self.o_sq).sum(axis=1),
                "sum_d": flat(self.d64).sum(axis=1),
                "sum_sq_d": flat(self.d_sq).sum(axis=1),
                "sum_od": flat(self.od).sum(axis=1),
            }

        return self._get("slice_partials", build)

    @property
    def moments(self) -> dict[str, float]:
        """Global sums/extrema merged from the per-slice partials."""

        def build():
            p = self.slice_partials
            m = {k: float(v.sum()) for k, v in p.items()}
            m["min_e"] = float(self.err.min())
            m["max_e"] = float(self.err.max())
            m["min_o"] = float(self.o64.min())
            m["max_o"] = float(self.o64.max())
            r = self.pwr_vals
            m["cnt_r"] = float(r.size)
            m["min_r"] = float(r.min()) if r.size else 0.0
            m["max_r"] = float(r.max()) if r.size else 0.0
            m["sum_r"] = float(r.sum()) if r.size else 0.0
            return m

        return self._get("moments", build)

    @property
    def value_range(self) -> float:
        m = self.moments
        return m["max_o"] - m["min_o"]

    @property
    def mean_o(self) -> float:
        return self.moments["sum_o"] / self.n

    @property
    def var_o(self) -> float:
        m = self.moments
        return max(m["sum_sq_o"] / self.n - self.mean_o**2, 0.0)

    @property
    def mse(self) -> float:
        return self.moments["sum_sq_e"] / self.n

    # -- fused metric views ------------------------------------------------

    def error_stats(self) -> ErrorStats:
        m = self.moments
        return ErrorStats(
            min_err=m["min_e"],
            max_err=m["max_e"],
            avg_err=m["sum_e"] / self.n,
            avg_abs_err=m["sum_abs_e"] / self.n,
            max_abs_err=max(abs(m["min_e"]), abs(m["max_e"])),
        )

    def rate_distortion(self) -> RateDistortion:
        return finalize_rate_distortion(
            self.n, self.mse, self.value_range, self.var_o
        )

    def pwr_error_stats(self) -> PwrErrorStats:
        m = self.moments
        if m["cnt_r"] == 0:
            return PwrErrorStats(0.0, 0.0, 0.0, 0.0, self.n)
        return PwrErrorStats(
            min_pwr_err=m["min_r"],
            max_pwr_err=m["max_r"],
            avg_pwr_err=m["sum_r"] / m["cnt_r"],
            max_abs_pwr_err=max(abs(m["min_r"]), abs(m["max_r"])),
            excluded=self.pwr_excluded,
        )

    def pearson(self) -> float:
        """Pearson correlation from the cached arrays (one centred pass)."""

        def build():
            mean_d = self.moments["sum_d"] / self.n
            if self._scratch is None:
                co = self.o64 - self.mean_o
                cd = self.d64 - mean_d
                so = math.sqrt(float(np.mean(co * co)))
                sd = math.sqrt(float(np.mean(cd * cd)))
                if so == 0.0 or sd == 0.0:
                    if np.array_equal(self.o64, self.d64):
                        return 1.0
                    return float("nan")
                return float(np.mean(co * cd)) / (so * sd)
            # pooled path: centred fields in reused buffers, moments via
            # dot products — no temporaries beyond the two buffers
            co = self._scratch.get("ws.centered_o", self.shape)
            cd = self._scratch.get("ws.centered_d", self.shape)
            np.subtract(self.o64, self.mean_o, out=co)
            np.subtract(self.d64, mean_d, out=cd)
            cof = co.reshape(-1)
            cdf = cd.reshape(-1)
            so = math.sqrt(float(np.dot(cof, cof)) / self.n)
            sd = math.sqrt(float(np.dot(cdf, cdf)) / self.n)
            if so == 0.0 or sd == 0.0:
                if np.array_equal(self.o64, self.d64):
                    return 1.0
                return float("nan")
            return float(np.dot(cof, cdf)) / self.n / (so * sd)

        return self._get("pearson", build)

    def err_pdf(self, bins: int = DEFAULT_PDF_BINS) -> Pdf:
        m = self.moments
        return histogram_pdf(self.err.ravel(), m["min_e"], m["max_e"], bins)

    def pwr_err_pdf(self, bins: int = DEFAULT_PDF_BINS) -> Pdf:
        m = self.moments
        return histogram_pdf(self.pwr_vals, m["min_r"], m["max_r"], bins)

    def data_properties(
        self, entropy_bins: int = DEFAULT_ENTROPY_BINS
    ) -> DataProperties:
        """Property analysis of the original field from cached moments."""
        m = self.moments
        var = self.var_o
        return DataProperties(
            min_value=m["min_o"],
            max_value=m["max_o"],
            value_range=self.value_range,
            mean=self.mean_o,
            std=math.sqrt(var),
            variance=var,
            entropy=entropy(self.o64, entropy_bins),
            zeros=int(np.count_nonzero(self.o64 == 0.0)),
            n_elements=self.n,
        )
