"""Streaming (chunked) assessment with bounded memory.

The paper's introduction motivates GPU-side assessment with instrument
pipelines whose acquisition rates (e.g. 250 GB/s on LCLS-II) forbid
staging full datasets.  :class:`StreamingChecker` assesses an
original/decompressed stream fed as consecutive z-chunks, holding only a
small carry buffer of trailing slices:

* **pattern-1 metrics** — exact: the fused reductions are associative,
  so chunk accumulators merge like the multi-GPU merge;
* **SSIM** — exact, via the same slice-FIFO the pattern-3 kernel uses;
  streaming requires a fixed ``dynamic_range`` in the
  :class:`~repro.kernels.pattern3.Pattern3Config` (the global range is
  unknowable mid-stream);
* **autocorrelation** — exact: raw lagged cross-products accumulate
  per-slice (a pair at lag τ becomes valid exactly when its τ-later
  slice arrives) and the mean-centring correction is applied once at
  :meth:`finalize`.

Equality with the batch kernels is asserted in tests for arbitrary
chunkings.
"""

from __future__ import annotations

import math

import numpy as np

from repro.core.workspace import finalize_rate_distortion
from repro.errors import CheckerError, ShapeError
from repro.gpusim.memory import SmemFifo
from repro.kernels.pattern1 import Pattern1Result
from repro.kernels.pattern3 import Pattern3Config, N_WINDOW_ACCUMS, _box_sums2d
from repro.metrics.ssim import window_positions
from repro.telemetry.tracer import NULL_TRACER, Tracer

__all__ = ["StreamingChecker", "StreamingResult"]


class StreamingResult:
    """Finalised streaming assessment (subset of a full report)."""

    def __init__(self, pattern1: Pattern1Result, ssim: float | None,
                 autocorrelation: np.ndarray | None):
        self.pattern1 = pattern1
        self.ssim = ssim
        self.autocorrelation = autocorrelation

    def scalars(self) -> dict[str, float]:
        out = self.pattern1.as_dict()
        if self.ssim is not None:
            out["ssim"] = self.ssim
        return out


class StreamingChecker:
    """Incremental assessment of z-chunked original/decompressed streams.

    Parameters
    ----------
    plane_shape:
        (ny, nx) of every incoming slice.
    max_lag:
        Autocorrelation lags to track (0 disables).
    ssim:
        Pattern-3 configuration; must carry an explicit
        ``dynamic_range``.  ``None`` disables streaming SSIM.
    pwr_floor:
        Pointwise-relative-error exclusion threshold (pattern 1).
    """

    def __init__(
        self,
        plane_shape: tuple[int, int],
        max_lag: int = 10,
        ssim: Pattern3Config | None = None,
        pwr_floor: float = 0.0,
        tracer: Tracer | None = None,
    ):
        if len(plane_shape) != 2 or min(plane_shape) < 1:
            raise ShapeError(f"plane_shape must be (ny, nx), got {plane_shape}")
        if max_lag < 0:
            raise ValueError("max_lag must be >= 0")
        if max_lag >= min(plane_shape):
            raise ShapeError(
                f"max_lag {max_lag} must be < min plane extent {min(plane_shape)}"
            )
        if ssim is not None and ssim.dynamic_range is None:
            raise CheckerError(
                "streaming SSIM needs an explicit dynamic_range (the global "
                "value range is unknown mid-stream)"
            )
        self.ny, self.nx = plane_shape
        self.max_lag = max_lag
        self.ssim_config = ssim
        self.pwr_floor = pwr_floor
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self._chunk_index = 0

        # -- pattern-1 accumulators ---------------------------------------
        self._n = 0
        self._min_e = math.inf
        self._max_e = -math.inf
        self._sum_e = 0.0
        self._sum_abs_e = 0.0
        self._sum_sq_e = 0.0
        self._min_o = math.inf
        self._max_o = -math.inf
        self._sum_o = 0.0
        self._sum_sq_o = 0.0
        self._min_r = math.inf
        self._max_r = -math.inf
        self._sum_r = 0.0
        self._cnt_r = 0.0

        # -- autocorrelation raw sums per lag ------------------------------
        self._ac_ab = np.zeros(max_lag + 1)
        self._ac_a = np.zeros(max_lag + 1)
        self._ac_b = np.zeros(max_lag + 1)
        self._ac_n = np.zeros(max_lag + 1, dtype=np.int64)
        #: carry: last max_lag error slices (float64)
        self._carry: list[np.ndarray] = []

        # -- streaming SSIM -------------------------------------------------
        self._z = 0
        if ssim is not None:
            ssim.validate((max(ssim.window, 1), self.ny, self.nx))
            py = window_positions(self.ny, ssim.window, ssim.step)
            px = window_positions(self.nx, ssim.window, ssim.step)
            if py == 0 or px == 0:
                raise ShapeError("plane too small for the SSIM window")
            self._fifo = SmemFifo(
                depth=ssim.window, slot_shape=(N_WINDOW_ACCUMS, py, px)
            )
            self._ssim_total = 0.0
            self._ssim_count = 0
        self._finalized = False

    @classmethod
    def from_config(
        cls,
        plane_shape: tuple[int, int],
        config=None,
        tracer: Tracer | None = None,
    ) -> "StreamingChecker":
        """Build a streaming checker from a :class:`CheckerConfig`.

        The metric selection is routed through the execution planner
        (validating the configuration once): autocorrelation streams only
        when the plan schedules pattern 2, SSIM only when it schedules
        pattern 3.
        """
        from repro.engine.plan import build_plan

        plan = build_plan(config)
        config = plan.config
        patterns = plan.patterns
        return cls(
            plane_shape,
            max_lag=config.pattern2.max_lag if 2 in patterns else 0,
            ssim=config.pattern3 if 3 in patterns else None,
            pwr_floor=config.pattern1.pwr_floor,
            tracer=tracer,
        )

    # -- feeding -------------------------------------------------------------

    def update(self, orig_chunk: np.ndarray, dec_chunk: np.ndarray) -> None:
        """Feed the next z-chunk (shape ``(cz, ny, nx)``, any cz >= 1)."""
        if self._finalized:
            raise CheckerError("stream already finalised")
        orig_chunk = np.asarray(orig_chunk)
        dec_chunk = np.asarray(dec_chunk)
        if orig_chunk.shape != dec_chunk.shape:
            raise ShapeError(
                f"chunk shapes differ: {orig_chunk.shape} vs {dec_chunk.shape}"
            )
        if orig_chunk.ndim != 3 or orig_chunk.shape[1:] != (self.ny, self.nx):
            raise ShapeError(
                f"chunks must be (cz, {self.ny}, {self.nx}), got "
                f"{orig_chunk.shape}"
            )
        with self.tracer.span(
            f"chunk{self._chunk_index}", category="step",
            bytes=orig_chunk.nbytes + dec_chunk.nbytes,
            z0=self._z, cz=orig_chunk.shape[0],
        ):
            for o_slice, d_slice in zip(orig_chunk, dec_chunk):
                self._ingest_slice(
                    o_slice.astype(np.float64), d_slice.astype(np.float64)
                )
        self._chunk_index += 1

    def _ingest_slice(self, o: np.ndarray, d: np.ndarray) -> None:
        e = d - o
        # -- pattern-1 -----------------------------------------------------
        self._n += e.size
        self._min_e = min(self._min_e, float(e.min()))
        self._max_e = max(self._max_e, float(e.max()))
        self._sum_e += float(e.sum())
        self._sum_abs_e += float(np.abs(e).sum())
        self._sum_sq_e += float((e * e).sum())
        self._min_o = min(self._min_o, float(o.min()))
        self._max_o = max(self._max_o, float(o.max()))
        self._sum_o += float(o.sum())
        self._sum_sq_o += float((o * o).sum())
        mask = np.abs(o) > self.pwr_floor
        if mask.any():
            r = e[mask] / o[mask]
            self._min_r = min(self._min_r, float(r.min()))
            self._max_r = max(self._max_r, float(r.max()))
            self._sum_r += float(r.sum())
            self._cnt_r += float(mask.sum())

        # -- autocorrelation -----------------------------------------------
        if self.max_lag >= 1:
            for tau in range(1, self.max_lag + 1):
                if self._z >= tau:
                    self._emit_ac(self._carry[-tau], e, tau)
            self._carry.append(e)
            if len(self._carry) > self.max_lag:
                self._carry.pop(0)

        # -- SSIM ------------------------------------------------------------
        if self.ssim_config is not None:
            cfg = self.ssim_config
            slot = np.stack(
                [
                    _box_sums2d(o, cfg.window, cfg.step),
                    _box_sums2d(d, cfg.window, cfg.step),
                    _box_sums2d(o * o, cfg.window, cfg.step),
                    _box_sums2d(d * d, cfg.window, cfg.step),
                    _box_sums2d(o * d, cfg.window, cfg.step),
                ]
            )
            self._fifo.push(self._z, slot)
            k = self._z
            if k >= cfg.window - 1 and (k - cfg.window + 1) % cfg.step == 0:
                self._reduce_ssim_window()
        self._z += 1

    def _emit_ac(self, core_slice: np.ndarray, later_slice: np.ndarray,
                 tau: int) -> None:
        """Contributions of the (z, z+tau) slice pair at lag ``tau``.

        ``core_slice`` is the error slice tau steps back (now provably in
        the valid region); its three shifted partners are the z-shifted
        later slice plus its own in-plane y/x shifts.
        """
        ny, nx = self.ny, self.nx
        core = core_slice[: ny - tau, : nx - tau]
        shift_z = later_slice[: ny - tau, : nx - tau]
        shift_y = core_slice[tau:, : nx - tau]
        shift_x = core_slice[: ny - tau, tau:]
        b = shift_z + shift_y + shift_x
        self._ac_ab[tau] += float((core * b).sum())
        self._ac_a[tau] += float(core.sum())
        self._ac_b[tau] += float(b.sum())
        self._ac_n[tau] += core.size

    def _reduce_ssim_window(self) -> None:
        cfg = self.ssim_config
        L = float(cfg.dynamic_range)
        c1 = (cfg.k1 * L) ** 2
        c2 = (cfg.k2 * L) ** 2
        volume = float(cfg.window**3)
        s1, s2, sq1, sq2, s12 = self._fifo.reduce()
        mu1 = s1 / volume
        mu2 = s2 / volume
        var1 = np.maximum(sq1 / volume - mu1 * mu1, 0.0)
        var2 = np.maximum(sq2 / volume - mu2 * mu2, 0.0)
        cov = s12 / volume - mu1 * mu2
        local = ((2 * mu1 * mu2 + c1) * (2 * cov + c2)) / (
            (mu1 * mu1 + mu2 * mu2 + c1) * (var1 + var2 + c2)
        )
        self._ssim_total += float(local.sum())
        self._ssim_count += local.size

    # -- finishing -------------------------------------------------------------

    def finalize(self) -> StreamingResult:
        """Close the stream and compute the final metric values."""
        if self._n == 0:
            raise CheckerError("no data was streamed")
        self._finalized = True
        with self.tracer.span(
            "finalize", category="step", slices=self._z, elements=self._n
        ):
            return self._finalize_result()

    def _finalize_result(self) -> StreamingResult:
        n = self._n
        mse = self._sum_sq_e / n
        value_range = self._max_o - self._min_o
        mean_o = self._sum_o / n
        var_o = max(self._sum_sq_o / n - mean_o * mean_o, 0.0)
        rd = finalize_rate_distortion(n, mse, value_range, var_o)
        has_r = self._cnt_r > 0
        pattern1 = Pattern1Result(
            n=n,
            min_err=self._min_e,
            max_err=self._max_e,
            avg_err=self._sum_e / n,
            avg_abs_err=self._sum_abs_e / n,
            max_abs_err=max(abs(self._min_e), abs(self._max_e)),
            mse=mse,
            rmse=rd.rmse,
            value_range=value_range,
            nrmse=rd.nrmse,
            snr=rd.snr,
            psnr=rd.psnr,
            min_pwr_err=self._min_r if has_r else 0.0,
            max_pwr_err=self._max_r if has_r else 0.0,
            avg_pwr_err=self._sum_r / self._cnt_r if has_r else 0.0,
            min_orig=self._min_o,
            max_orig=self._max_o,
            mean_orig=mean_o,
            var_orig=var_o,
            extras={"pwr_count": self._cnt_r, "sum_pwr": self._sum_r,
                    "streamed": True},
        )

        ac = None
        if self.max_lag >= 1:
            mu = self._sum_e / n
            var = max(self._sum_sq_e / n - mu * mu, 0.0)
            ac = np.empty(self.max_lag + 1)
            ac[0] = 1.0
            if var == 0.0:
                ac[1:] = 0.0
            else:
                for tau in range(1, self.max_lag + 1):
                    ne = int(self._ac_n[tau])
                    if ne == 0:
                        ac[tau] = 0.0
                        continue
                    # Σ(a-μ)(Σ_i b_i - 3μ) = Σab - μΣb - 3μΣa + 3 n μ²
                    centered = (
                        self._ac_ab[tau]
                        - mu * self._ac_b[tau]
                        - 3.0 * mu * self._ac_a[tau]
                        + 3.0 * ne * mu * mu
                    )
                    ac[tau] = centered / 3.0 / ne / var

        ssim = None
        if self.ssim_config is not None:
            if self._ssim_count == 0:
                raise CheckerError(
                    "stream ended before one full SSIM window arrived"
                )
            ssim = self._ssim_total / self._ssim_count
        return StreamingResult(pattern1=pattern1, ssim=ssim,
                               autocorrelation=ac)
