"""Streaming (chunked) assessment with bounded memory.

The paper's introduction motivates GPU-side assessment with instrument
pipelines whose acquisition rates (e.g. 250 GB/s on LCLS-II) forbid
staging full datasets.  :class:`StreamingChecker` assesses an
original/decompressed stream fed as consecutive z-chunks, holding only a
small carry buffer of trailing slices:

* **pattern-1 metrics** — exact: the fused reductions are associative,
  so chunk accumulators merge like the multi-GPU merge;
* **SSIM** — exact, via the same slice-FIFO the pattern-3 kernel uses;
  streaming requires a fixed ``dynamic_range`` in the
  :class:`~repro.kernels.pattern3.Pattern3Config` (the global range is
  unknowable mid-stream);
* **autocorrelation** — exact: raw lagged cross-products accumulate
  per-chunk (a pair at lag τ becomes valid exactly when its τ-later
  slice arrives) and the mean-centring correction is applied once at
  :meth:`finalize`.

The pattern-1 and autocorrelation accumulation is shared with the tiled
executor: both feed consecutive z-blocks into one
:class:`~repro.engine.tiling.TileAccumulator`, so the chunk-merge maths
lives in exactly one place.  Equality with the batch kernels is asserted
in tests for arbitrary chunkings.
"""

from __future__ import annotations

import numpy as np

from repro.engine.tiling import TileAccumulator
from repro.errors import CheckerError, ShapeError
from repro.gpusim.memory import SmemFifo
from repro.kernels.pattern1 import Pattern1Result, result_from_sums
from repro.kernels.pattern3 import Pattern3Config, N_WINDOW_ACCUMS, _box_sums2d
from repro.metrics.ssim import window_positions
from repro.telemetry.tracer import NULL_TRACER, Tracer

__all__ = ["StreamingChecker", "StreamingResult"]


class StreamingResult:
    """Finalised streaming assessment (subset of a full report)."""

    def __init__(self, pattern1: Pattern1Result, ssim: float | None,
                 autocorrelation: np.ndarray | None):
        self.pattern1 = pattern1
        self.ssim = ssim
        self.autocorrelation = autocorrelation

    def scalars(self) -> dict[str, float]:
        out = self.pattern1.as_dict()
        if self.ssim is not None:
            out["ssim"] = self.ssim
        return out


class StreamingChecker:
    """Incremental assessment of z-chunked original/decompressed streams.

    Parameters
    ----------
    plane_shape:
        (ny, nx) of every incoming slice.
    max_lag:
        Autocorrelation lags to track (0 disables).
    ssim:
        Pattern-3 configuration; must carry an explicit
        ``dynamic_range``.  ``None`` disables streaming SSIM.
    pwr_floor:
        Pointwise-relative-error exclusion threshold (pattern 1).
    """

    def __init__(
        self,
        plane_shape: tuple[int, int],
        max_lag: int = 10,
        ssim: Pattern3Config | None = None,
        pwr_floor: float = 0.0,
        tracer: Tracer | None = None,
    ):
        if len(plane_shape) != 2 or min(plane_shape) < 1:
            raise ShapeError(f"plane_shape must be (ny, nx), got {plane_shape}")
        if max_lag < 0:
            raise ValueError("max_lag must be >= 0")
        if max_lag >= min(plane_shape):
            raise ShapeError(
                f"max_lag {max_lag} must be < min plane extent {min(plane_shape)}"
            )
        if ssim is not None and ssim.dynamic_range is None:
            raise CheckerError(
                "streaming SSIM needs an explicit dynamic_range (the global "
                "value range is unknown mid-stream)"
            )
        self.ny, self.nx = plane_shape
        self.max_lag = max_lag
        self.ssim_config = ssim
        self.pwr_floor = pwr_floor
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self._chunk_index = 0

        # pattern-1 + autocorrelation accumulation (including the rolling
        # carry of the last max_lag error slices) is the tiled executor's
        # accumulator, fed caller-sized chunks instead of slabs
        self._acc = TileAccumulator(
            plane_shape, max_lag=max_lag, pwr_floor=pwr_floor
        )

        # -- streaming SSIM -------------------------------------------------
        self._z = 0
        if ssim is not None:
            ssim.validate((max(ssim.window, 1), self.ny, self.nx))
            py = window_positions(self.ny, ssim.window, ssim.step)
            px = window_positions(self.nx, ssim.window, ssim.step)
            if py == 0 or px == 0:
                raise ShapeError("plane too small for the SSIM window")
            self._fifo = SmemFifo(
                depth=ssim.window, slot_shape=(N_WINDOW_ACCUMS, py, px)
            )
            self._ssim_total = 0.0
            self._ssim_count = 0
        self._finalized = False

    @classmethod
    def from_config(
        cls,
        plane_shape: tuple[int, int],
        config=None,
        tracer: Tracer | None = None,
    ) -> "StreamingChecker":
        """Build a streaming checker from a :class:`CheckerConfig`.

        The metric selection is routed through the execution planner
        (validating the configuration once): autocorrelation streams only
        when the plan schedules pattern 2, SSIM only when it schedules
        pattern 3.
        """
        from repro.engine.plan import build_plan

        plan = build_plan(config)
        config = plan.config
        patterns = plan.patterns
        return cls(
            plane_shape,
            max_lag=config.pattern2.max_lag if 2 in patterns else 0,
            ssim=config.pattern3 if 3 in patterns else None,
            pwr_floor=config.pattern1.pwr_floor,
            tracer=tracer,
        )

    # -- feeding -------------------------------------------------------------

    def update(self, orig_chunk: np.ndarray, dec_chunk: np.ndarray) -> None:
        """Feed the next z-chunk (shape ``(cz, ny, nx)``, any cz >= 1)."""
        if self._finalized:
            raise CheckerError("stream already finalised")
        orig_chunk = np.asarray(orig_chunk)
        dec_chunk = np.asarray(dec_chunk)
        if orig_chunk.shape != dec_chunk.shape:
            raise ShapeError(
                f"chunk shapes differ: {orig_chunk.shape} vs {dec_chunk.shape}"
            )
        if orig_chunk.ndim != 3 or orig_chunk.shape[1:] != (self.ny, self.nx):
            raise ShapeError(
                f"chunks must be (cz, {self.ny}, {self.nx}), got "
                f"{orig_chunk.shape}"
            )
        with self.tracer.span(
            f"chunk{self._chunk_index}", category="step",
            bytes=orig_chunk.nbytes + dec_chunk.nbytes,
            z0=self._z, cz=orig_chunk.shape[0],
        ):
            o64 = orig_chunk.astype(np.float64)
            d64 = dec_chunk.astype(np.float64)
            z0 = self._z
            self._acc.add_block(o64, d64, d64 - o64)
            if self.ssim_config is not None:
                for i in range(o64.shape[0]):
                    self._ingest_ssim_slice(z0 + i, o64[i], d64[i])
            self._z = self._acc.z
        self._chunk_index += 1

    @property
    def _carry(self) -> np.ndarray:
        """The rolling error-slice carry (one entry per tracked lag)."""
        carry = self._acc._carry
        if carry is None:
            return np.zeros((0, self.ny, self.nx))
        return carry

    def _ingest_ssim_slice(self, k: int, o: np.ndarray, d: np.ndarray) -> None:
        cfg = self.ssim_config
        slot = np.stack(
            [
                _box_sums2d(o, cfg.window, cfg.step),
                _box_sums2d(d, cfg.window, cfg.step),
                _box_sums2d(o * o, cfg.window, cfg.step),
                _box_sums2d(d * d, cfg.window, cfg.step),
                _box_sums2d(o * d, cfg.window, cfg.step),
            ]
        )
        self._fifo.push(k, slot)
        if k >= cfg.window - 1 and (k - cfg.window + 1) % cfg.step == 0:
            self._reduce_ssim_window()

    def _reduce_ssim_window(self) -> None:
        cfg = self.ssim_config
        L = float(cfg.dynamic_range)
        c1 = (cfg.k1 * L) ** 2
        c2 = (cfg.k2 * L) ** 2
        volume = float(cfg.window**3)
        s1, s2, sq1, sq2, s12 = self._fifo.reduce()
        mu1 = s1 / volume
        mu2 = s2 / volume
        var1 = np.maximum(sq1 / volume - mu1 * mu1, 0.0)
        var2 = np.maximum(sq2 / volume - mu2 * mu2, 0.0)
        cov = s12 / volume - mu1 * mu2
        local = ((2 * mu1 * mu2 + c1) * (2 * cov + c2)) / (
            (mu1 * mu1 + mu2 * mu2 + c1) * (var1 + var2 + c2)
        )
        self._ssim_total += float(local.sum())
        self._ssim_count += local.size

    # -- checkpoint/resume -----------------------------------------------------

    def state_dict(self) -> dict:
        """Exact mid-stream state (accumulator, SSIM FIFO, cursors).

        Restoring this snapshot onto a same-configuration checker and
        feeding the remaining chunks is bit-identical to feeding the
        whole stream uninterrupted — the resumable audit's contract,
        property-tested in ``tests/property/test_property_audit.py``.
        """
        state = {
            "acc": self._acc.state_dict(),
            "z": self._z,
            "chunk_index": self._chunk_index,
            "finalized": self._finalized,
        }
        if self.ssim_config is not None:
            state["ssim"] = {
                "total": self._ssim_total,
                "count": self._ssim_count,
                "fifo": self._fifo.state_dict(),
            }
        return state

    def load_state(self, state: dict) -> None:
        """Restore a :meth:`state_dict` snapshot (same configuration)."""
        if bool(state.get("finalized")):
            raise CheckerError("cannot restore a finalised stream state")
        has_ssim = "ssim" in state and state["ssim"] is not None
        if has_ssim != (self.ssim_config is not None):
            raise CheckerError(
                "stream state and checker disagree on SSIM configuration"
            )
        self._acc.load_state(state["acc"])
        self._z = int(state["z"])
        self._chunk_index = int(state["chunk_index"])
        if has_ssim:
            self._ssim_total = float(state["ssim"]["total"])
            self._ssim_count = int(state["ssim"]["count"])
            self._fifo.load_state(state["ssim"]["fifo"])

    # -- finishing -------------------------------------------------------------

    def finalize(self) -> StreamingResult:
        """Close the stream and compute the final metric values."""
        if self._acc.n == 0:
            raise CheckerError("no data was streamed")
        self._finalized = True
        with self.tracer.span(
            "finalize", category="step", slices=self._z, elements=self._acc.n
        ):
            return self._finalize_result()

    def _finalize_result(self) -> StreamingResult:
        a = self._acc
        pattern1 = result_from_sums(
            a.n,
            a.min_e,
            a.max_e,
            a.sum_e,
            a.sum_abs_e,
            a.sum_sq_e,
            a.min_o,
            a.max_o,
            a.sum_o,
            a.sum_sq_o,
            a.min_r,
            a.max_r,
            a.sum_r,
            a.cnt_r,
            None,
            None,
        )
        pattern1.extras.update(
            pwr_count=a.cnt_r, sum_pwr=a.sum_r, streamed=True
        )

        ac = a.finalize_autocorr() if self.max_lag >= 1 else None

        ssim = None
        if self.ssim_config is not None:
            if self._ssim_count == 0:
                raise CheckerError(
                    "stream ended before one full SSIM window arrived"
                )
            ssim = self._ssim_total / self._ssim_count
        return StreamingResult(pattern1=pattern1, ssim=ssim,
                               autocorrelation=ac)
