"""One-call assessment APIs (Z-checker's ``compareData`` equivalents)."""

from __future__ import annotations

import time

import numpy as np

from repro.config.schema import CheckerConfig
from repro.core.checker import CuZChecker
from repro.core.report import AssessmentReport
from repro.telemetry.tracer import NULL_TRACER, Tracer

__all__ = ["compare_data", "compare_data_2d", "assess_compressor"]


def compare_data(
    orig: np.ndarray,
    dec: np.ndarray,
    config: CheckerConfig | None = None,
    with_baselines: bool = True,
    backend: str | None = None,
    checker: CuZChecker | None = None,
    tracer: Tracer | None = None,
    extras: dict | None = None,
    session=None,
) -> AssessmentReport:
    """Assess an original/decompressed pair with every configured metric.

    The single-call analogue of Z-checker's ``compareData``: returns a
    report holding every metric value plus modelled execution times for
    cuZC (and, by default, the moZC / ompZC baselines so speedups are
    directly readable).

    Drivers that assess many pairs pass a prebuilt ``checker`` so the
    execution plan (and its one-time configuration validation) is shared
    across the whole run instead of rebuilt per pair; a ``session``
    (:class:`~repro.service.session.CheckerSession`) goes further and
    reuses the checker *across calls* — warm results are bit-identical
    to cold ones.  ``extras`` seeds the backend run context (the process
    executor passes the shared-memory payload size through here so host
    spans carry it).
    """
    if checker is None:
        if session is not None:
            checker = session.checker_for(config, with_baselines, backend)
        else:
            checker = CuZChecker(
                config=config, with_baselines=with_baselines, backend=backend
            )
    return checker.assess(orig, dec, tracer=tracer, extras=extras)


def compare_data_2d(
    orig: np.ndarray,
    dec: np.ndarray,
    window: int = 8,
    step: int = 1,
    max_lag: int = 10,
) -> dict[str, object]:
    """Assess a 2-D field pair (slices, images, single-level model output).

    The paper's kernels are 3-D, but its design "can be easily extended
    to other dimensions"; this convenience runs the 2-D metric variants
    plus the dimension-agnostic ones and returns a flat result dict:
    error stats, rate-distortion, 2-D SSIM, 2-D derivative comparison,
    2-D spatial autocorrelation, Pearson, and the spectral comparison.
    """
    from repro.core.workspace import MetricWorkspace
    from repro.errors import ShapeError
    from repro.metrics.spectral import spectral_comparison
    from repro.metrics.ssim import SsimConfig
    from repro.metrics.twod import (
        derivative_metrics_2d,
        spatial_autocorrelation_2d,
        ssim2d,
    )

    orig = np.asarray(orig)
    dec = np.asarray(dec)
    if orig.ndim != 2:
        raise ShapeError(f"compare_data_2d expects 2-D fields, got {orig.shape}")
    if orig.shape != dec.shape:
        raise ShapeError(f"shape mismatch: {orig.shape} vs {dec.shape}")

    # one workspace feeds the error stats, rate-distortion family, and
    # Pearson from a single set of cached scans (previously three
    # independent full passes over both arrays)
    ws = MetricWorkspace(orig, dec)
    es = ws.error_stats()
    rd = ws.rate_distortion()
    lag = min(max_lag, min(orig.shape) - 1)
    out: dict[str, object] = {
        "min_err": es.min_err,
        "max_err": es.max_err,
        "avg_err": es.avg_err,
        "mse": rd.mse,
        "rmse": rd.rmse,
        "nrmse": rd.nrmse,
        "psnr": rd.psnr,
        "snr": rd.snr,
        "value_range": rd.value_range,
        "pearson": ws.pearson(),
        "autocorrelation": spatial_autocorrelation_2d(ws.err, lag),
        "spectral": spectral_comparison(orig, dec),
    }
    if min(orig.shape) >= window:
        out["ssim"] = ssim2d(orig, dec, SsimConfig(window=window, step=step)).ssim
    if min(orig.shape) >= 3:
        out["derivative_order1"] = derivative_metrics_2d(orig, dec).rms_diff
    return out


def assess_compressor(
    orig: np.ndarray,
    compressor,
    config: CheckerConfig | None = None,
    with_baselines: bool = False,
    backend: str | None = None,
    checker: CuZChecker | None = None,
    tracer: Tracer | None = None,
    extras: dict | None = None,
    session=None,
) -> AssessmentReport:
    """Compress, decompress, and assess in one call.

    ``compressor`` is any :class:`repro.compressors.base.Compressor`.
    The report's auxiliary section gains the compression-specific
    metrics: ratio, bit rate, and (wall-clock) compression and
    decompression throughputs of this Python implementation.
    """
    orig = np.asarray(orig)
    tr = tracer if tracer is not None else (
        checker.tracer if checker is not None else NULL_TRACER
    )
    t0 = time.perf_counter()
    with tr.span("compress", category="codec", bytes=orig.nbytes):
        compressed = compressor.compress(orig)
    t1 = time.perf_counter()
    with tr.span("decompress", category="codec", bytes=compressed.nbytes):
        dec = compressor.decompress(compressed)
    t2 = time.perf_counter()

    report = compare_data(
        orig,
        dec,
        config=config,
        with_baselines=with_baselines,
        backend=backend,
        checker=checker,
        tracer=tracer,
        extras=extras,
        session=session,
    )
    nbytes = orig.size * orig.dtype.itemsize
    report.auxiliary.update(
        {
            "compression_ratio": nbytes / max(1, compressed.nbytes),
            "bit_rate": 8.0 * compressed.nbytes / orig.size,
            "compression_throughput": nbytes / max(t1 - t0, 1e-12),
            "decompression_throughput": nbytes / max(t2 - t1, 1e-12),
        }
    )
    return report
