"""Assessment report containers (the output-engine data model)."""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.config.schema import CheckerConfig
from repro.core.frameworks import FrameworkTiming
from repro.kernels.pattern1 import Pattern1Result
from repro.kernels.pattern2 import Pattern2Result
from repro.kernels.pattern3 import Pattern3Result
from repro.metrics.base import METRIC_REGISTRY, Pattern, canonical_metric_order

__all__ = ["MetricValue", "AssessmentReport"]


@dataclass(frozen=True)
class MetricValue:
    """One reported metric value with its provenance."""

    name: str
    value: Any
    pattern: Pattern
    description: str = ""

    @property
    def is_scalar(self) -> bool:
        return isinstance(self.value, (int, float))


@dataclass
class AssessmentReport:
    """Full result of assessing one original/decompressed pair."""

    shape: tuple[int, int, int]
    config: CheckerConfig
    pattern1: Pattern1Result | None = None
    pattern2: Pattern2Result | None = None
    pattern3: Pattern3Result | None = None
    #: auxiliary metrics (pearson, entropy, properties, compression info)
    auxiliary: dict[str, float] = field(default_factory=dict)
    #: per-framework modelled execution times
    timings: dict[str, FrameworkTiming] = field(default_factory=dict)

    def scalars(self) -> dict[str, float]:
        """All scalar metric values keyed by registry name.

        Keys are in Table I row order (derived names the registry does
        not know come last, alphabetically), so reports diff stably
        across runs whatever order the patterns executed in.
        """
        out: dict[str, float] = {}
        if self.pattern1 is not None:
            out.update(self.pattern1.as_dict())
        if self.pattern2 is not None:
            out.update(self.pattern2.as_dict())
        if self.pattern3 is not None:
            out.update(self.pattern3.as_dict())
        out.update(self.auxiliary)
        return {name: out[name] for name in canonical_metric_order(out)}

    def values(self) -> list[MetricValue]:
        """Typed metric values, including vector-valued results."""
        rows: list[MetricValue] = []

        def _add(name: str, value: Any) -> None:
            spec = METRIC_REGISTRY.get(name)
            pattern = spec.pattern if spec else Pattern.AUXILIARY
            description = spec.description if spec else ""
            rows.append(MetricValue(name, value, pattern, description))

        for name, value in self.scalars().items():
            _add(name, value)
        if self.pattern1 is not None:
            if self.pattern1.err_pdf is not None:
                _add("err_pdf", self.pattern1.err_pdf)
            if self.pattern1.pwr_err_pdf is not None:
                _add("pwr_err_pdf", self.pattern1.pwr_err_pdf)
        if self.pattern2 is not None:
            _add("autocorrelation", self.pattern2.autocorrelation)
        return rows

    def speedup(self, baseline: str, target: str = "cuZC") -> float:
        """Modelled speedup of ``target`` over ``baseline``."""
        base = self.timings[baseline].total_seconds
        tgt = self.timings[target].total_seconds
        return base / tgt

    def to_dict(self) -> dict[str, Any]:
        """JSON-serialisable representation."""
        out: dict[str, Any] = {
            "shape": list(self.shape),
            "metrics": {
                k: (None if isinstance(v, float) and not math.isfinite(v) else v)
                for k, v in self.scalars().items()
            },
        }
        if self.pattern2 is not None:
            out["autocorrelation"] = [
                float(v) for v in np.asarray(self.pattern2.autocorrelation)
            ]
        if self.timings:
            out["timings"] = {
                name: {
                    "total_seconds": t.total_seconds,
                    "pattern_seconds": {
                        str(p): s for p, s in t.pattern_seconds.items()
                    },
                }
                for name, t in self.timings.items()
            }
        return out
