"""Exporters for span traces: chrome://tracing JSON, flat CSV, summaries.

Three consumers of the same :class:`~repro.telemetry.tracer.Span` list:

* :func:`write_chrome_trace` — the timeline view (chrome://tracing or
  Perfetto), one lane per track (thread or rank);
* :func:`write_csv` — a flat machine-readable table for notebooks and
  the nightly-artifact diffing;
* :func:`kernel_summary` / :func:`metric_summary` — the paper-style
  breakdown tables: per-kernel totals (the Fig. 8 layout: one row per
  kernel with wall/modelled time and effective bandwidth) and the
  Table-I-ordered per-metric view mapping each metric to the pattern
  step and kernel that computed it.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.telemetry.tracer import Span

__all__ = [
    "chrome_trace_events",
    "write_chrome_trace",
    "csv_text",
    "write_csv",
    "kernel_summary",
    "metric_summary",
    "summary_tables",
]


def _fmt_us(value: float) -> float:
    """Microsecond timestamps rounded to ns precision for stable output."""
    return round(value, 3)


def chrome_trace_events(
    spans: list[Span], process_name: str = "cuZ-Checker assessment"
) -> list[dict]:
    """Complete-event ("ph": "X") list for a span trace."""
    events: list[dict] = [
        {"name": "process_name", "ph": "M", "pid": 0, "args": {"name": process_name}}
    ]
    for sp in sorted(spans, key=lambda s: (s.track, s.start_us, s.span_id)):
        args = {"span_id": sp.span_id, **sp.attrs}
        if sp.parent_id is not None:
            args["parent_id"] = sp.parent_id
        if sp.bytes:
            args["bytes"] = sp.bytes
        events.append(
            {
                "name": sp.name,
                "cat": sp.category,
                "ph": "X",
                "ts": _fmt_us(sp.start_us),
                "dur": _fmt_us(sp.duration_us),
                "pid": 0,
                "tid": sp.track,
                "args": args,
            }
        )
    return events


def write_chrome_trace(
    spans: list[Span],
    path: str | Path,
    process_name: str = "cuZ-Checker assessment",
) -> Path:
    """Write the trace as a chrome://tracing / Perfetto JSON file."""
    path = Path(path)
    payload = {"traceEvents": chrome_trace_events(spans, process_name)}
    path.write_text(json.dumps(payload, indent=1) + "\n")
    return path


_CSV_HEADER = "span_id,parent_id,track,category,name,start_us,dur_us,bytes,attrs"


def csv_text(spans: list[Span]) -> str:
    """Flat CSV of the trace; ``attrs`` is a sorted-key JSON column."""
    lines = [_CSV_HEADER]
    for sp in sorted(spans, key=lambda s: (s.track, s.start_us, s.span_id)):
        attrs = json.dumps(sp.attrs, sort_keys=True, default=str)
        attrs = '"' + attrs.replace('"', '""') + '"'
        lines.append(
            f"{sp.span_id},"
            f"{'' if sp.parent_id is None else sp.parent_id},"
            f"{sp.track},{sp.category},{sp.name},"
            f"{_fmt_us(sp.start_us)},{_fmt_us(sp.duration_us)},"
            f"{sp.bytes},{attrs}"
        )
    return "\n".join(lines) + "\n"


def write_csv(spans: list[Span], path: str | Path) -> Path:
    path = Path(path)
    path.write_text(csv_text(spans))
    return path


def kernel_summary(spans: list[Span]) -> list[dict]:
    """Per-kernel aggregate rows (the Fig. 8 per-kernel layout).

    One row per kernel name: launch count, total wall time, bytes
    touched, effective host bandwidth, and — when the gpusim backend
    recorded them — modelled time, cycles, and occupancy.
    """
    grouped: dict[str, list[Span]] = {}
    for sp in spans:
        if sp.category == "kernel":
            grouped.setdefault(sp.name, []).append(sp)
    rows = []
    for name in sorted(grouped):
        group = grouped[name]
        wall_us = sum(s.duration_us for s in group)
        nbytes = sum(s.bytes for s in group)
        row = {
            "kernel": name,
            "pattern": group[0].attrs.get("pattern", ""),
            "calls": len(group),
            "wall_ms": round(wall_us / 1e3, 3),
            "bytes": nbytes,
            "GB/s": round(nbytes / max(wall_us * 1e-6, 1e-12) / 1e9, 2),
        }
        modelled = [s.attrs["modelled_ms"] for s in group if "modelled_ms" in s.attrs]
        if modelled:
            row["modelled_ms"] = round(sum(modelled), 3)
        cycles = [s.attrs["modelled_cycles"] for s in group if "modelled_cycles" in s.attrs]
        if cycles:
            row["modelled_cycles"] = int(sum(cycles))
        occ = [s.attrs["occupancy"] for s in group if "occupancy" in s.attrs]
        if occ:
            row["occupancy"] = round(sum(occ) / len(occ), 3)
        peaks = [s.attrs["mem_peak_kb"] for s in group if "mem_peak_kb" in s.attrs]
        if peaks:
            row["peak_MB"] = round(max(peaks) / 1024.0, 1)
        host = [s.attrs["host_bytes"] for s in group if "host_bytes" in s.attrs]
        if host:
            row["host_MB"] = round(max(host) / (1024.0 * 1024.0), 1)
        rows.append(row)
    return rows


def metric_summary(spans: list[Span]) -> list[dict]:
    """Table-I-ordered per-metric rows: metric → pattern step → kernel.

    Step spans carry the metric list they computed; each metric maps to
    its step's wall time (shared by the metrics fused into that step)
    and the kernel the step launched.
    """
    from repro.metrics.base import canonical_metric_order

    per_metric: dict[str, dict] = {}
    for sp in spans:
        if sp.category != "step" or "metrics" not in sp.attrs:
            continue
        kernels = ",".join(
            s.name
            for s in spans
            if s.parent_id == sp.span_id and s.category == "kernel"
        )
        for metric in str(sp.attrs["metrics"]).split(","):
            if not metric:
                continue
            row = per_metric.setdefault(
                metric,
                {
                    "metric": metric,
                    "pattern": sp.attrs.get("pattern", ""),
                    "step": sp.name,
                    "kernels": kernels,
                    "wall_ms": 0.0,
                },
            )
            row["wall_ms"] = round(row["wall_ms"] + sp.duration_us / 1e3, 3)
    ordered = canonical_metric_order(per_metric)
    return [per_metric[m] for m in ordered]


def summary_tables(spans: list[Span]) -> str:
    """Render both summaries as aligned text tables."""
    from repro.viz.ascii import ascii_table

    parts = []
    kernels = kernel_summary(spans)
    if kernels:
        parts.append(ascii_table(kernels, title="per-kernel profile"))
    metrics = metric_summary(spans)
    if metrics:
        parts.append(ascii_table(metrics, title="per-metric profile (Table I order)"))
    if not parts:
        return "(no kernel or step spans recorded)"
    return "\n\n".join(parts)
