"""Telemetry: span tracing of the execution engine plus exporters.

Enable tracing by passing a :class:`Tracer` to any entry point
(``CuZChecker(tracer=...)``, ``compare_data(..., tracer=...)``,
``assess_dataset(..., tracer=...)``, ...) and export the collected
spans with :func:`write_chrome_trace` / :func:`write_csv`, or print the
paper-style breakdown with :func:`summary_tables`.  The ``cuzchecker
profile`` subcommand wires all of this together.
"""

from repro.telemetry.export import (
    chrome_trace_events,
    csv_text,
    kernel_summary,
    metric_summary,
    summary_tables,
    write_chrome_trace,
    write_csv,
)
from repro.telemetry.tracer import NULL_TRACER, Span, Tracer

__all__ = [
    "Span",
    "Tracer",
    "NULL_TRACER",
    "chrome_trace_events",
    "write_chrome_trace",
    "csv_text",
    "write_csv",
    "kernel_summary",
    "metric_summary",
    "summary_tables",
]
