"""Span-based tracing of the execution engine.

One :class:`Tracer` collects :class:`Span` records for a whole run —
plan → pattern step → kernel, plus driver-level spans (batch fields,
parallel tasks, multi-GPU ranks, codec calls).  The design constraints:

* **near-zero overhead when disabled** — :meth:`Tracer.span` on a
  disabled tracer returns a shared no-op context manager without
  allocating anything, so the engine can call it unconditionally;
* **thread-safe nesting** — the open-span stack is thread-local, so
  spans opened by thread-pool workers nest under whatever that worker
  opened, and an explicit ``parent=`` hands a worker the driver's root
  span across the thread boundary;
* **mergeable** — per-rank sub-tracers (multi-GPU) merge into a parent
  tracer with a stable id remapping, so a decomposed run exports one
  coherent timeline with one track per rank.

Timestamps are microseconds relative to the tracer's construction, the
unit the chrome://tracing exporter needs.
"""

from __future__ import annotations

import threading
import time
import tracemalloc
from dataclasses import dataclass, field

__all__ = ["Span", "Tracer", "NULL_TRACER", "calibration_observations"]


@dataclass
class Span:
    """One timed region of an assessment.

    ``category`` encodes the level of the hierarchy ("plan", "step",
    "kernel", "field", "rank", "codec", ...); ``track`` is the export
    lane (thread index, or rank after a multi-GPU merge); ``bytes`` is
    the global-memory traffic the region touched, when known.
    """

    name: str
    category: str = "span"
    start_us: float = 0.0
    end_us: float = 0.0
    span_id: int = 0
    parent_id: int | None = None
    track: int = 0
    bytes: int = 0
    attrs: dict = field(default_factory=dict)

    @property
    def duration_us(self) -> float:
        return self.end_us - self.start_us


class _NullSpan:
    """Shared no-op span handle returned by disabled tracers.

    Accepts the same mutations a live :class:`Span` does (rename,
    byte counts, attrs) so call sites never branch on tracer state.
    """

    __slots__ = ("name", "category", "bytes", "attrs")

    def __init__(self):
        self.name = ""
        self.category = ""
        self.bytes = 0
        self.attrs = {}

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc) -> bool:
        return False


_NULL_SPAN = _NullSpan()


class _SpanHandle:
    """Context manager that opens/closes one live span."""

    __slots__ = ("_tracer", "span", "_explicit_parent", "_mem0")

    def __init__(self, tracer: "Tracer", span: Span, parent: Span | None):
        self._tracer = tracer
        self.span = span
        self._explicit_parent = parent
        self._mem0 = None

    def __enter__(self) -> Span:
        tr = self._tracer
        sp = self.span
        stack = tr._stack()
        if self._explicit_parent is not None:
            sp.parent_id = self._explicit_parent.span_id
        elif stack:
            sp.parent_id = stack[-1].span_id
        sp.track = tr._track()
        if tr.trace_memory and tracemalloc.is_tracing():
            # tracemalloc has one global peak; per-span peaks need a
            # reset on entry plus a slot where children propagate their
            # own peaks back up (reset_peak would otherwise hide a
            # child's high-water mark from its parent)
            self._mem0 = tracemalloc.get_traced_memory()[0]
            tr._memstack().append(0)
            tracemalloc.reset_peak()
        sp.start_us = (tr._clock() - tr._epoch) * 1e6
        stack.append(sp)
        return sp

    def __exit__(self, *exc) -> bool:
        tr = self._tracer
        sp = self.span
        sp.end_us = (tr._clock() - tr._epoch) * 1e6
        if self._mem0 is not None:
            current, peak = tracemalloc.get_traced_memory()
            memstack = tr._memstack()
            my_peak = max(peak, memstack.pop() if memstack else 0)
            sp.attrs["mem_peak_kb"] = round(my_peak / 1024.0, 1)
            sp.attrs["mem_delta_kb"] = round((current - self._mem0) / 1024.0, 1)
            if memstack:
                memstack[-1] = max(memstack[-1], my_peak)
            tracemalloc.reset_peak()
        stack = tr._stack()
        if stack and stack[-1] is sp:
            stack.pop()
        with tr._lock:
            tr.spans.append(sp)
        return False


class Tracer:
    """Collects a hierarchical span trace of one (or many) assessments.

    Parameters
    ----------
    enabled:
        When false, :meth:`span` is a no-op returning a shared null
        handle — the engine's tracing hooks cost one attribute check.
    clock:
        Monotonic clock in seconds; injectable for deterministic tests.
    trace_memory:
        When true and :mod:`tracemalloc` is tracing, every span records
        ``mem_peak_kb`` (the allocation high-water mark while it was
        open, children included) and ``mem_delta_kb`` (net allocation
        change) in its attrs.  Off by default — tracemalloc slows
        allocation-heavy code, so the profiler enables it explicitly.
    """

    def __init__(
        self,
        enabled: bool = True,
        clock=time.perf_counter,
        trace_memory: bool = False,
    ):
        self.enabled = enabled
        self.trace_memory = trace_memory
        self.spans: list[Span] = []
        self._clock = clock
        self._epoch = clock()
        self._lock = threading.Lock()
        self._next_id = 1
        self._local = threading.local()
        self._tracks: dict[int, int] = {}

    # -- internals ---------------------------------------------------------

    def _stack(self) -> list[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def _memstack(self) -> list[int]:
        """Per-thread child-peak propagation slots (see ``_SpanHandle``)."""
        stack = getattr(self._local, "memstack", None)
        if stack is None:
            stack = self._local.memstack = []
        return stack

    def _track(self) -> int:
        """Small stable integer lane for the calling thread."""
        ident = threading.get_ident()
        with self._lock:
            if ident not in self._tracks:
                self._tracks[ident] = len(self._tracks)
            return self._tracks[ident]

    def _reserve(self, count: int) -> int:
        """Reserve ``count`` span ids, returning the first."""
        with self._lock:
            base = self._next_id
            self._next_id += count
            return base

    # -- public API --------------------------------------------------------

    def span(
        self,
        name: str,
        category: str = "span",
        parent: Span | None = None,
        bytes: int = 0,
        **attrs,
    ):
        """Open a span as a context manager yielding the :class:`Span`.

        ``parent`` overrides the thread-local nesting — drivers hand
        their root span to worker threads this way.  Keyword arguments
        become the span's exported ``attrs``.
        """
        if not self.enabled:
            return _NULL_SPAN
        sp = Span(
            name=name,
            category=category,
            span_id=self._reserve(1),
            bytes=bytes,
            attrs=dict(attrs),
        )
        return _SpanHandle(self, sp, parent)

    def merge(
        self,
        other: "Tracer",
        parent: Span | None = None,
        track: int | None = None,
    ) -> None:
        """Fold a sub-tracer's spans into this tracer.

        Ids are remapped by a stable offset (reserved from this tracer's
        counter), root spans of ``other`` are attached under ``parent``,
        timestamps are shifted onto this tracer's epoch, and every
        merged span is assigned ``track`` (one export lane per rank).
        """
        self.merge_spans(other.spans, other._epoch, parent=parent, track=track)

    def merge_spans(
        self,
        spans: list[Span],
        epoch: float,
        parent: Span | None = None,
        track: int | None = None,
    ) -> None:
        """Fold raw spans recorded against ``epoch`` into this tracer.

        The picklable half of :meth:`merge`: a process worker ships
        ``(tracer.spans, tracer._epoch)`` home and the driver folds them
        in with the same stable id remapping the multi-rank merge uses.
        ``time.perf_counter`` is CLOCK_MONOTONIC (system-wide on Linux),
        so shifting the worker's epoch onto ours lines the per-process
        lanes up on one wall-clock timeline.
        """
        if not spans:
            return
        base = self._reserve(max(sp.span_id for sp in spans) + 1)
        shift_us = (epoch - self._epoch) * 1e6
        merged: list[Span] = []
        for sp in spans:
            merged.append(
                Span(
                    name=sp.name,
                    category=sp.category,
                    start_us=sp.start_us + shift_us,
                    end_us=sp.end_us + shift_us,
                    span_id=base + sp.span_id,
                    parent_id=(
                        base + sp.parent_id
                        if sp.parent_id is not None
                        else (parent.span_id if parent is not None else None)
                    ),
                    track=track if track is not None else sp.track,
                    bytes=sp.bytes,
                    attrs=dict(sp.attrs),
                )
            )
        with self._lock:
            self.spans.extend(merged)

    # -- convenience -------------------------------------------------------

    def sorted_spans(self) -> list[Span]:
        """Spans in (track, start, id) order — the export order."""
        return sorted(self.spans, key=lambda s: (s.track, s.start_us, s.span_id))

    def children(self, span: Span) -> list[Span]:
        return [s for s in self.spans if s.parent_id == span.span_id]

    def roots(self) -> list[Span]:
        return [s for s in self.spans if s.parent_id is None]


def calibration_observations(spans: list[Span]):
    """Yield ``(key, measured_s, predicted_base_s)`` triples from a trace.

    The measure half of the dispatch calibration loop: step spans
    executed under an adaptive decision carry ``calibration_key`` and
    ``predicted_base_ms`` attrs (see :meth:`ExecutionPlan.execute`);
    ``tools/calibrate.py fit`` folds these into the persistent table.
    Spans without the attrs — untraced runs, explicit backend overrides,
    non-step spans — are skipped.
    """
    for sp in spans:
        key = sp.attrs.get("calibration_key")
        base_ms = sp.attrs.get("predicted_base_ms")
        if not key or not base_ms:
            continue
        measured_s = sp.duration_us / 1e6
        if measured_s <= 0:
            continue
        yield key, measured_s, base_ms / 1e3


#: shared disabled tracer: the default for every entry point, so tracing
#: hooks run unconditionally at the cost of one ``enabled`` check
NULL_TRACER = Tracer(enabled=False)
