"""Command-line front end: ``cuzchecker`` / ``python -m repro``.

Subcommands
-----------

``analyze``      assess an original/decompressed raw-binary pair
``assess``       compress a synthetic field with a codec and assess it
``audit``        resumable out-of-core assessment of a bundle tree
``check``        assess + acceptance criteria (exit code for CI gates)
``estimate``     predict SZ compression ratio without compressing
``explain``      print the execution plan for a metric selection
``generate``     synthesise a dataset bundle on disk
``table1``       print the pattern classification (paper Table I)
``table2``       print the runtime profile (paper Table II)
``profile``      run an assessment under the telemetry tracer and export profiles
``serve``        run the resident assessment server (HTTP/JSON, warm caches)
``speedups``     print modelled speedups (paper Figs. 10/12)
``throughput``   print modelled throughputs (paper Fig. 11)
``trace``        export a chrome://tracing timeline of a kernel plan

Every assessment subcommand routes through one
:class:`~repro.service.session.CheckerSession`, the same warm-state
service layer the server runs on — the CLI is a one-job session.
"""

from __future__ import annotations

import argparse
import sys

from repro._version import __version__

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="cuzchecker",
        description="cuZ-Checker reproduction: GPU-model-based lossy "
        "compression assessment",
    )
    parser.add_argument("--version", action="version", version=__version__)
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("analyze", help="assess an original/decompressed pair")
    p.add_argument("original", help="raw float32 binary of the original data")
    p.add_argument("decompressed", help="raw float32 binary of the decompressed data")
    p.add_argument("--shape", required=True, help="z,y,x extents, e.g. 100,500,500")
    p.add_argument("--config", help="Z-checker-style .cfg file")
    p.add_argument("--metrics", help='metric subset, e.g. "psnr,ssim" (default: all)')
    p.add_argument("--backend", help="execution backend: fused-host|metric-oriented|gpusim")
    p.add_argument("--tiling", help="fused-host tiling: auto|off|<slab depth>")
    p.add_argument("--executor",
                   help="parallel executor: auto|serial|thread|process")
    p.add_argument("--calibration",
                   help="dispatch calibration table: auto|off|<path>")
    p.add_argument("--json", dest="json_out", help="also write the report as JSON")
    p.add_argument("--dat-dir", help="also export PDFs/autocorrelation as .dat")
    p.add_argument("--html", dest="html_out",
                   help="also write a self-contained HTML report")

    p = sub.add_parser("assess", help="compress a synthetic field and assess it")
    p.add_argument("--dataset", default="miranda", help="hurricane|nyx|scale_letkf|miranda")
    p.add_argument("--field", default=None, help="field name (default: first)")
    p.add_argument("--scale", type=float, default=0.125, help="shape scale factor")
    p.add_argument("--codec", default="sz", help="sz|zfp|uniform_quant|decimate")
    p.add_argument("--rel-bound", type=float, default=1e-3)
    p.add_argument("--rate", type=float, default=8.0, help="zfp bits/value")
    p.add_argument("--metrics", help='metric subset, e.g. "psnr,ssim" (default: all)')
    p.add_argument("--backend", help="execution backend: fused-host|metric-oriented|gpusim")
    p.add_argument("--tiling", help="fused-host tiling: auto|off|<slab depth>")
    p.add_argument("--executor",
                   help="parallel executor: auto|serial|thread|process")
    p.add_argument("--calibration",
                   help="dispatch calibration table: auto|off|<path>")

    p = sub.add_parser(
        "explain",
        help="print the execution plan a metric selection compiles to",
    )
    p.add_argument("--config", help="Z-checker-style .cfg file")
    p.add_argument("--metrics", help='metric subset, e.g. "psnr,ssim" (default: all)')
    p.add_argument("--backend", help="execution backend: fused-host|metric-oriented|gpusim")
    p.add_argument("--tiling", help="fused-host tiling: auto|off|<slab depth>")
    p.add_argument("--executor",
                   help="parallel executor: auto|serial|thread|process")
    p.add_argument("--calibration",
                   help="dispatch calibration table: auto|off|<path>")
    p.add_argument("--shape", default=None,
                   help="optional z,y,x extents to add modelled kernel costs "
                        "and the dispatch candidate table")
    p.add_argument("--json", dest="json_out", action="store_true",
                   help="emit the plan (steps, resolved executor, candidate "
                        "costs) as machine-readable JSON")
    p.add_argument("--session", action="store_true",
                   help="also show which warm caches a resident session "
                        "(cuzchecker serve) would reuse for this plan")

    p = sub.add_parser("generate", help="synthesise a dataset bundle")
    p.add_argument("--dataset", required=True)
    p.add_argument("--out", required=True, help="bundle directory")
    p.add_argument("--scale", type=float, default=0.125)
    p.add_argument("--fields", type=int, default=None, help="limit field count")
    p.add_argument("--chunk", type=int, default=None, metavar="NZ",
                   help="write a chunked v2 bundle with NZ-slab chunks "
                        "(per-chunk checksums; streamable by `audit`)")
    p.add_argument("--codec", choices=("raw", "zlib", "zstd"), default=None,
                   help="chunk payload codec (needs --chunk): zlib/zstd "
                        "write a compressed v3 bundle (uncompressed "
                        "digests); zstd falls back to zlib when the "
                        "zstandard package is missing")
    p.add_argument("--dtype", choices=("float32", "float64"), default=None,
                   help="on-disk dtype (default: the fields' own dtype)")

    p = sub.add_parser(
        "audit",
        help="walk a directory tree of bundles and assess every field "
        "chunk-by-chunk with checkpoint/resume (bounded memory)",
    )
    p.add_argument("root", help="directory tree containing bundle directories")
    p.add_argument("--out", default=None,
                   help="final JSON report (default <root>/audit_report.json)")
    p.add_argument("--checkpoint", default=None,
                   help="checkpoint file, replaced atomically after every "
                        "chunk (default <root>/.audit_checkpoint.json)")
    p.add_argument("--codec", default="sz",
                   help="chunk-wise codec under assessment: "
                        "sz|zfp|uniform_quant|decimate")
    p.add_argument("--rel-bound", type=float, default=1e-3)
    p.add_argument("--rate", type=float, default=8.0, help="zfp bits/value")
    p.add_argument("--chunk", type=int, default=None, metavar="NZ",
                   help="slab depth for v1 (unchunked) bundles")
    p.add_argument("--max-lag", type=int, default=None,
                   help="autocorrelation lags (default: config pattern2)")
    p.add_argument("--no-ssim", action="store_true",
                   help="skip streaming SSIM even when the manifest has "
                        "the field's value range")
    p.add_argument("--no-verify", action="store_true",
                   help="skip per-chunk checksum verification while reading")
    p.add_argument("--audit-workers", default=None, metavar="N",
                   help="field-parallel worker processes: auto (cost-model "
                        "priced, default), serial, or an explicit count; "
                        "kill/resume and the report bytes are identical "
                        "whatever the count")
    p.add_argument("--fresh", action="store_true",
                   help="ignore and discard an existing checkpoint")
    p.add_argument("--trace", default=None, metavar="PATH",
                   help="also export the chunk-read spans as a chrome trace")

    sub.add_parser("table1", help="print the metric pattern classification")

    p = sub.add_parser("table2", help="print the Table II runtime profile")
    p.add_argument("--paper-shapes", action="store_true", default=True)

    p = sub.add_parser(
        "profile",
        help="run an assessment under the telemetry tracer and export "
        "a chrome trace, a CSV, and per-kernel/per-metric summaries",
    )
    p.add_argument("original", nargs="?", default=None,
                   help="raw float32 original (omit to profile a synthetic field)")
    p.add_argument("decompressed", nargs="?", default=None,
                   help="raw float32 decompressed (needs --shape)")
    p.add_argument("--shape", help="z,y,x extents of the raw pair")
    p.add_argument("--dataset", default="hurricane",
                   help="synthetic dataset when no file pair is given")
    p.add_argument("--field", default=None, help="field name (default: first)")
    p.add_argument("--scale", type=float, default=0.05, help="shape scale factor")
    p.add_argument("--codec", default="sz",
                   help="codec for the synthetic path: sz|zfp|uniform_quant|decimate")
    p.add_argument("--rel-bound", type=float, default=1e-3)
    p.add_argument("--rate", type=float, default=8.0, help="zfp bits/value")
    p.add_argument("--metrics", help='metric subset, e.g. "psnr,ssim" (default: all)')
    p.add_argument("--backend", help="execution backend: fused-host|metric-oriented|gpusim")
    p.add_argument("--tiling", help="fused-host tiling: auto|off|<slab depth>")
    p.add_argument("--executor",
                   help="parallel executor: auto|serial|thread|process")
    p.add_argument("--calibration",
                   help="dispatch calibration table: auto|off|<path>")
    p.add_argument("--memory", action="store_true",
                   help="also record per-span tracemalloc peaks (slower)")
    p.add_argument("--repeat", type=int, default=1,
                   help="profile this many assessment runs in one trace")
    p.add_argument("--out-dir", default="profile_out",
                   help="directory for trace.json and spans.csv")

    p = sub.add_parser(
        "serve",
        help="run the resident assessment server (asyncio HTTP/JSON with "
        "cross-request warm caches)",
    )
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=8765,
                   help="TCP port (0 picks a free one and prints it)")
    p.add_argument("--config", help="Z-checker-style .cfg file")
    p.add_argument("--metrics", help='metric subset, e.g. "psnr,ssim" (default: all)')
    p.add_argument("--backend", help="execution backend: fused-host|metric-oriented|gpusim")
    p.add_argument("--tiling", help="fused-host tiling: auto|off|<slab depth>")
    p.add_argument("--executor",
                   help="parallel executor: auto|serial|thread|process")
    p.add_argument("--calibration",
                   help="dispatch calibration table: auto|off|<path>")
    p.add_argument("--max-queue", type=int, default=64,
                   help="admission-control bound on queued jobs (429 beyond)")
    p.add_argument("--job-workers", type=int, default=1,
                   help="concurrent assessment jobs (threads on the shared "
                        "session)")

    p = sub.add_parser("speedups", help="print modelled speedups (Figs. 10/12)")
    p.add_argument("--pattern", type=int, choices=(1, 2, 3), default=None,
                   help="per-pattern speedups; omit for overall (Fig. 10)")

    p = sub.add_parser("throughput", help="print modelled throughputs (Fig. 11)")
    p.add_argument("--pattern", type=int, choices=(1, 2, 3), required=True)

    p = sub.add_parser(
        "check",
        help="assess a codec and apply acceptance criteria (exit 1 on fail)",
    )
    p.add_argument("--dataset", default="miranda")
    p.add_argument("--field", default=None)
    p.add_argument("--scale", type=float, default=0.125)
    p.add_argument("--codec", default="sz")
    p.add_argument("--rel-bound", type=float, default=1e-3)
    p.add_argument("--rate", type=float, default=8.0)
    p.add_argument("--preset", choices=("lenient", "strict"), default="strict")
    p.add_argument("--min-psnr", type=float, default=None)
    p.add_argument("--min-ssim", type=float, default=None)

    p = sub.add_parser(
        "estimate",
        help="predict a field's SZ compression ratio without compressing",
    )
    p.add_argument("--dataset", default="miranda")
    p.add_argument("--field", default=None)
    p.add_argument("--scale", type=float, default=0.125)
    p.add_argument("--rel-bound", type=float, action="append",
                   help="repeatable; default 1e-2, 1e-3, 1e-4")
    p.add_argument("--verify", action="store_true",
                   help="also run the real compressor and show the error")

    p = sub.add_parser(
        "trace", help="export a chrome://tracing timeline of a kernel plan"
    )
    p.add_argument("--framework", choices=("cuZC", "moZC"), default="cuZC")
    p.add_argument("--pattern", type=int, choices=(1, 2, 3), default=1)
    p.add_argument("--dataset", default="hurricane")
    p.add_argument("--out", required=True, help="trace JSON path")

    return parser


def _parse_shape(text: str) -> tuple[int, int, int]:
    parts = tuple(int(tok) for tok in text.replace("x", ",").split(",") if tok)
    if len(parts) != 3:
        raise SystemExit(f"--shape needs three extents, got {text!r}")
    return parts  # type: ignore[return-value]


def _apply_overrides(
    config,
    metrics: str | None,
    backend: str | None,
    tiling: str | None = None,
    executor: str | None = None,
    calibration: str | None = None,
):
    """Overlay ``--metrics``/``--backend``/``--tiling``/``--executor``/
    ``--calibration``."""
    from dataclasses import replace

    from repro.config.defaults import default_config

    config = config or default_config()
    if metrics:
        text = metrics.strip()
        selection: tuple[str, ...] | str
        if text.lower() == "all":
            selection = "all"
        else:
            selection = tuple(t.strip() for t in text.split(",") if t.strip())
        config = replace(config, metrics=selection)
    if backend:
        config = replace(config, backend=backend)
    if tiling:
        text = tiling.strip().lower()
        if text in ("auto", "off"):
            config = replace(config, tiling=text)
        else:
            try:
                config = replace(config, tiling=int(text))
            except ValueError:
                raise SystemExit(
                    f"--tiling must be auto, off or a slab depth, got {tiling!r}"
                ) from None
    if executor:
        text = executor.strip().lower()
        if text not in ("auto", "serial", "thread", "process"):
            raise SystemExit(
                f"--executor must be auto, serial, thread or process, "
                f"got {executor!r}"
            )
        config = replace(config, executor=text)
    if calibration:
        config = replace(config, calibration=calibration.strip())
    return config


def _cmd_analyze(args) -> int:
    from repro.config.parser import load_config
    from repro.core.output import report_to_text, write_report_dats, write_report_json
    from repro.io.raw import read_raw
    from repro.service.session import CheckerSession

    shape = _parse_shape(args.shape)
    orig = read_raw(args.original, shape)
    dec = read_raw(args.decompressed, shape)
    config = load_config(args.config) if args.config else None
    config = _apply_overrides(config, args.metrics, args.backend, args.tiling,
                              args.executor, args.calibration)
    # a one-job session: the CLI shares the server's warm code path
    with CheckerSession(config=config, with_baselines=True) as session:
        report = session.assess(orig, dec)
    print(report_to_text(report))
    if args.json_out:
        write_report_json(report, args.json_out)
        print(f"\nJSON report written to {args.json_out}")
    if args.dat_dir:
        paths = write_report_dats(report, args.dat_dir)
        print(f".dat series written: {', '.join(str(p) for p in paths)}")
    if args.html_out:
        from repro.viz.html import write_report_html

        write_report_html(report, args.html_out)
        print(f"HTML report written to {args.html_out}")
    return 0


def _cmd_assess(args) -> int:
    from repro.compressors.registry import get_compressor
    from repro.core.output import report_to_text
    from repro.datasets.registry import dataset_info, generate_field, scaled_shape
    from repro.service.session import CheckerSession

    info = dataset_info(args.dataset)
    field_name = args.field or info.field_names[0]
    shape = scaled_shape(args.dataset, args.scale)
    field = generate_field(args.dataset, field_name, shape=shape)
    if args.codec == "zfp":
        codec = get_compressor("zfp", rate=args.rate)
    elif args.codec == "decimate":
        codec = get_compressor("decimate")
    else:
        codec = get_compressor(args.codec, rel_bound=args.rel_bound)
    print(
        f"assessing {args.codec} on {args.dataset}/{field_name} "
        f"shape={shape} ..."
    )
    config = _apply_overrides(None, args.metrics, args.backend, args.tiling,
                              args.executor, args.calibration)
    with CheckerSession(config=config) as session:
        report = session.assess_compressor(field.data, codec)
    print(report_to_text(report))
    return 0


def _cmd_explain(args) -> int:
    import json

    from repro.config.parser import load_config
    from repro.engine.plan import build_plan

    config = load_config(args.config) if args.config else None
    config = _apply_overrides(config, args.metrics, args.backend, args.tiling,
                              args.executor, args.calibration)
    shape = _parse_shape(args.shape) if args.shape else None
    plan = build_plan(config, shape=shape)
    if args.json_out:
        payload = plan.to_dict(shape)
        if getattr(args, "session", False):
            from repro.service.session import CheckerSession

            payload["session"] = CheckerSession(config=config).stats()
        print(json.dumps(payload, indent=2, sort_keys=True))
    else:
        print(plan.explain(shape))
        if getattr(args, "session", False):
            from repro.service.session import CheckerSession

            print(CheckerSession(config=config).describe_warm_state(shape))
    return 0


def _cmd_generate(args) -> int:
    from repro.datasets.registry import generate_dataset
    from repro.io.bundle import save_bundle, save_bundle_chunked

    ds = generate_dataset(args.dataset, scale=args.scale, n_fields=args.fields)
    if args.chunk is not None:
        bundle = save_bundle_chunked(
            ds, args.out, chunk_nz=args.chunk, dtype=args.dtype,
            codec=args.codec,
        )
        n_chunks = sum(len(bundle.chunks[f]) for f in bundle.field_names)
        line = (
            f"wrote {len(bundle.field_names)} fields of shape {bundle.shape} "
            f"to {bundle.root} (chunked v{bundle.version}: {n_chunks} chunks "
            f"of {args.chunk} slabs, per-chunk sha256"
        )
        if bundle.codec != "raw":
            raw = sum(
                c.nbytes for f in bundle.field_names for c in bundle.chunks[f]
            )
            stored = sum(
                c.stored for f in bundle.field_names for c in bundle.chunks[f]
            )
            line += (
                f", {bundle.codec}-packed {stored / 1e6:.1f} of "
                f"{raw / 1e6:.1f} MB = {raw / max(stored, 1):.2f}x"
            )
        print(line + ")")
    elif args.codec is not None:
        from repro.errors import CheckerError

        raise CheckerError("--codec requires --chunk (chunked bundles only)")
    else:
        bundle = save_bundle(ds, args.out, dtype=args.dtype)
        print(
            f"wrote {len(bundle.field_names)} fields of shape {bundle.shape} "
            f"to {bundle.root}"
        )
    return 0


def _cmd_audit(args) -> int:
    from repro.audit.runner import run_audit
    from repro.service.session import CheckerSession
    from repro.telemetry import Tracer
    from repro.telemetry.tracer import NULL_TRACER

    if args.codec == "zfp":
        codec_args = {"rate": args.rate}
    elif args.codec == "decimate":
        codec_args = {}
    else:
        codec_args = {"rel_bound": args.rel_bound}
    tracer = Tracer() if args.trace else NULL_TRACER

    def progress(event, payload):
        if event == "resume":
            extra = " mid-field" if payload["mid_field"] else ""
            print(
                f"resuming from checkpoint: {payload['completed']} field(s) "
                f"already done{extra}",
                flush=True,
            )
        elif event == "field_done":
            r = payload["result"]
            psnr = r["scalars"].get("psnr")
            ssim = r["ssim"]
            line = (
                f"  {r['bundle']}/{r['field']}: {r['chunks']} chunks, "
                f"{r['bytes_streamed'] / 1e6:.1f} MB"
            )
            if psnr is not None:
                line += f", psnr {psnr:.2f}"
            if ssim is not None:
                line += f", ssim {ssim:.4f}"
            print(line, flush=True)

    with CheckerSession(tracer=tracer) as session:
        report = run_audit(
            args.root,
            out_path=args.out,
            checkpoint_path=args.checkpoint,
            codec=args.codec,
            codec_args=codec_args,
            chunk_nz=args.chunk,
            max_lag=args.max_lag,
            use_ssim=not args.no_ssim,
            verify=not args.no_verify,
            resume=not args.fresh,
            workers=args.audit_workers,
            session=session,
            tracer=tracer,
            progress=progress,
        )
    totals = report["totals"]
    print(
        f"audited {totals['fields']} field(s) in {totals['bundles']} "
        f"bundle(s): {totals['chunks']} chunks, "
        f"{totals['bytes_streamed'] / 1e6:.1f} MB streamed"
    )
    if args.trace:
        from repro.telemetry import write_chrome_trace

        path = write_chrome_trace(
            tracer.spans, args.trace,
            process_name=f"cuzchecker audit: {args.root}",
        )
        print(f"chunk-span trace -> {path}")
    return 0


def _cmd_table1(args) -> int:
    from repro.metrics.base import table1

    for category, metrics in table1().items():
        print(f"{category}:")
        for name in metrics:
            print(f"  {name}")
    return 0


def _cmd_table2(args) -> int:
    from repro.core.profiles import runtime_profile
    from repro.datasets.registry import PAPER_SHAPES
    from repro.viz.ascii import ascii_table

    rows = [r.formatted() for r in runtime_profile(PAPER_SHAPES)]
    print(ascii_table(rows, title="Runtime profile (paper Table II)"))
    return 0


def _cmd_profile(args) -> int:
    import tracemalloc
    from pathlib import Path

    from repro.telemetry import Tracer, summary_tables, write_chrome_trace, write_csv

    tracer = Tracer(trace_memory=args.memory)
    if args.memory:
        tracemalloc.start()
    if args.original is not None:
        if args.decompressed is None or not args.shape:
            raise SystemExit(
                "profile needs either no positionals (synthetic field) or "
                "an original+decompressed raw pair with --shape"
            )
        from repro.io.raw import read_raw
        from repro.service.session import CheckerSession

        shape = _parse_shape(args.shape)
        orig = read_raw(args.original, shape)
        dec = read_raw(args.decompressed, shape)
        config = _apply_overrides(None, args.metrics, args.backend,
                                  args.tiling, args.executor,
                                  args.calibration)
        source = f"{args.original} vs {args.decompressed} {shape}"
        # --repeat under one session shows the warm-path profile: the
        # first job builds the plan, the rest hit the shape memo
        with CheckerSession(config=config) as session:
            for _ in range(max(1, args.repeat)):
                session.assess(orig, dec, tracer=tracer)
    else:
        from repro.compressors.registry import get_compressor
        from repro.datasets.registry import dataset_info, generate_field, scaled_shape
        from repro.service.session import CheckerSession

        info = dataset_info(args.dataset)
        field_name = args.field or info.field_names[0]
        shape = scaled_shape(args.dataset, args.scale)
        field = generate_field(args.dataset, field_name, shape=shape)
        if args.codec == "zfp":
            codec = get_compressor("zfp", rate=args.rate)
        elif args.codec == "decimate":
            codec = get_compressor("decimate")
        else:
            codec = get_compressor(args.codec, rel_bound=args.rel_bound)
        config = _apply_overrides(None, args.metrics, args.backend,
                                  args.tiling, args.executor,
                                  args.calibration)
        source = f"{args.codec} on {args.dataset}/{field_name} {shape}"
        with CheckerSession(config=config) as session:
            for _ in range(max(1, args.repeat)):
                session.assess_compressor(field.data, codec, tracer=tracer)

    if args.memory:
        tracemalloc.stop()
    out_dir = Path(args.out_dir)
    out_dir.mkdir(parents=True, exist_ok=True)
    trace_path = write_chrome_trace(
        tracer.spans, out_dir / "trace.json", process_name=f"cuzchecker profile: {source}"
    )
    csv_path = write_csv(tracer.spans, out_dir / "spans.csv")
    print(f"profiled {source}")
    print(summary_tables(tracer.spans))
    print(f"\nchrome trace -> {trace_path} (open in chrome://tracing or "
          "https://ui.perfetto.dev)")
    print(f"span CSV     -> {csv_path}")
    return 0


def _cmd_speedups(args) -> int:
    from repro.analysis.speedup import overall_speedups, speedup_table
    from repro.datasets.registry import PAPER_SHAPES
    from repro.viz.ascii import ascii_table

    if args.pattern is None:
        rows = overall_speedups(PAPER_SHAPES)
        title = "Overall speedups (paper Fig. 10)"
    else:
        rows = speedup_table(PAPER_SHAPES, args.pattern)
        title = f"Pattern-{args.pattern} speedups (paper Fig. 12)"
    print(
        ascii_table(
            [
                {
                    "dataset": r.dataset,
                    "baseline": r.baseline,
                    "speedup": f"{r.speedup:.2f}x",
                }
                for r in rows
            ],
            title=title,
        )
    )
    return 0


def _cmd_throughput(args) -> int:
    from repro.analysis.throughput import pattern_throughputs
    from repro.datasets.registry import PAPER_SHAPES
    from repro.viz.ascii import ascii_table

    rows = pattern_throughputs(PAPER_SHAPES, args.pattern)
    unit = "MB/s" if args.pattern == 3 else "GB/s"
    print(
        ascii_table(
            [
                {
                    "framework": r.framework,
                    "dataset": r.dataset,
                    f"throughput [{unit}]": (
                        f"{r.mbps:.1f}" if args.pattern == 3 else f"{r.gbps:.2f}"
                    ),
                }
                for r in rows
            ],
            title=f"Pattern-{args.pattern} throughput (paper Fig. 11)",
        )
    )
    return 0


def _cmd_check(args) -> int:
    from repro.compressors.registry import get_compressor
    from repro.core.acceptance import AcceptanceCriteria
    from repro.datasets.registry import dataset_info, generate_field, scaled_shape
    from repro.service.session import CheckerSession

    info = dataset_info(args.dataset)
    field_name = args.field or info.field_names[0]
    field = generate_field(
        args.dataset, field_name, shape=scaled_shape(args.dataset, args.scale)
    )
    if args.codec == "zfp":
        codec = get_compressor("zfp", rate=args.rate)
    elif args.codec == "decimate":
        codec = get_compressor("decimate")
    else:
        codec = get_compressor(args.codec, rel_bound=args.rel_bound)
    with CheckerSession() as session:
        report = session.assess_compressor(
            field.data, codec, with_baselines=False
        )

    criteria = (
        AcceptanceCriteria.strict()
        if args.preset == "strict"
        else AcceptanceCriteria.lenient()
    )
    from dataclasses import replace as _replace

    if args.min_psnr is not None:
        criteria = _replace(criteria, min_psnr=args.min_psnr)
    if args.min_ssim is not None:
        criteria = _replace(criteria, min_ssim=args.min_ssim)
    verdict = criteria.evaluate(report)
    print(f"codec {args.codec} on {args.dataset}/{field_name}:")
    print(verdict.describe())
    return 0 if verdict.passed else 1


def _cmd_estimate(args) -> int:
    from repro.datasets.registry import dataset_info, generate_field, scaled_shape
    from repro.metrics.compressibility import delta_entropy, estimate_sz_ratio
    from repro.viz.ascii import ascii_table

    info = dataset_info(args.dataset)
    field_name = args.field or info.field_names[0]
    shape = scaled_shape(args.dataset, args.scale)
    field = generate_field(args.dataset, field_name, shape=shape)
    bounds = args.rel_bound or [1e-2, 1e-3, 1e-4]
    rows = []
    for rel in bounds:
        row = {
            "rel bound": f"{rel:g}",
            "delta entropy [b/v]": f"{delta_entropy(field.data, rel_bound=rel):.2f}",
            "predicted ratio": f"{estimate_sz_ratio(field.data, rel_bound=rel):.2f}",
        }
        if args.verify:
            from repro.compressors.sz import SZCompressor

            row["actual ratio"] = f"{SZCompressor(rel_bound=rel).ratio(field.data):.2f}"
        rows.append(row)
    print(
        ascii_table(
            rows,
            title=f"compressibility of {args.dataset}/{field_name} {shape}",
        )
    )
    return 0


def _cmd_trace(args) -> int:
    from repro.config.defaults import default_config
    from repro.datasets.registry import PAPER_SHAPES
    from repro.gpusim.trace import write_chrome_trace
    from repro.kernels.metric_oriented import (
        plan_mo_pattern1,
        plan_mo_pattern2,
        plan_mo_pattern3,
    )
    from repro.kernels.pattern1 import plan_pattern1
    from repro.kernels.pattern2 import plan_pattern2
    from repro.kernels.pattern3 import plan_pattern3

    config = default_config()
    shape = PAPER_SHAPES[args.dataset.lower()]
    if args.framework == "cuZC":
        planners = {
            1: lambda: [plan_pattern1(shape, config.pattern1)],
            2: lambda: [plan_pattern2(shape, config.pattern2)],
            3: lambda: [plan_pattern3(shape, config.pattern3)],
        }
    else:
        planners = {
            1: lambda: plan_mo_pattern1(shape, config.pattern1),
            2: lambda: plan_mo_pattern2(shape, config.pattern2),
            3: lambda: plan_mo_pattern3(shape, config.pattern3),
        }
    plans = planners[args.pattern]()
    path = write_chrome_trace(
        plans, args.out,
        process_name=f"{args.framework} pattern-{args.pattern} ({args.dataset})",
    )
    print(f"trace with {len(plans)} kernel plan(s) written to {path}")
    print("open in chrome://tracing or https://ui.perfetto.dev")
    return 0


def _cmd_serve(args) -> int:
    import asyncio

    from repro.config.parser import load_config
    from repro.server.app import AssessmentServer
    from repro.service.session import CheckerSession

    config = load_config(args.config) if args.config else None
    config = _apply_overrides(config, args.metrics, args.backend, args.tiling,
                              args.executor, args.calibration)
    session = CheckerSession(config=config)
    server = AssessmentServer(
        session=session,
        host=args.host,
        port=args.port,
        max_queue=args.max_queue,
        job_workers=args.job_workers,
    )

    async def _run() -> None:
        await server.start()
        # the smoke harness parses this line to discover a --port 0 bind
        print(
            f"session {session.session_id} serving on "
            f"http://{server.host}:{server.port}",
            flush=True,
        )
        await server.serve_until_shutdown()

    try:
        asyncio.run(_run())
    except KeyboardInterrupt:
        pass
    finally:
        session.close(wait=True)  # idempotent; covers Ctrl-C mid-accept
    from repro.parallel.shm import active_segment_count

    print(
        f"server stopped cleanly (live shm segments: {active_segment_count()})",
        flush=True,
    )
    return 0


_COMMANDS = {
    "analyze": _cmd_analyze,
    "assess": _cmd_assess,
    "audit": _cmd_audit,
    "explain": _cmd_explain,
    "generate": _cmd_generate,
    "table1": _cmd_table1,
    "table2": _cmd_table2,
    "profile": _cmd_profile,
    "serve": _cmd_serve,
    "speedups": _cmd_speedups,
    "throughput": _cmd_throughput,
    "check": _cmd_check,
    "estimate": _cmd_estimate,
    "trace": _cmd_trace,
}


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
