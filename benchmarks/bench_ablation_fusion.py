"""Ablation 1 (DESIGN.md): kernel fusion for pattern-1 metrics.

Two layers:

* **modelled** — the cuZC fused plan vs moZC's 10 metric pipelines at the
  paper's Hurricane shape (Fig. 12a's 3.49-6.38x band);
* **measured** — a genuine wall-clock fusion experiment on this library's
  NumPy substrate: the fused single-pass pattern-1 execution against a
  metric-oriented run that calls each reference metric separately
  (re-reading the arrays per metric).  The measured ratio demonstrates
  that fusion pays off on CPUs too, not only in the GPU model.
"""

import numpy as np

from repro.gpusim.costmodel import kernel_time, kernels_time
from repro.gpusim.device import V100
from repro.kernels.metric_oriented import plan_mo_pattern1
from repro.kernels.pattern1 import execute_pattern1, plan_pattern1
from repro.metrics.error_stats import error_pdf, error_stats
from repro.metrics.pwr_error import pwr_error_pdf, pwr_error_stats
from repro.metrics.rate_distortion import rate_distortion


def metric_oriented_pattern1(orig: np.ndarray, dec: np.ndarray) -> dict:
    """One independent full pass per metric family (the moZC way)."""
    return {
        "error_stats": error_stats(orig, dec),
        "err_pdf": error_pdf(orig, dec),
        "pwr_stats": pwr_error_stats(orig, dec),
        "pwr_pdf": pwr_error_pdf(orig, dec),
        "rate_distortion": rate_distortion(orig, dec),
    }


def test_modelled_fusion_gain(benchmark, results_dir):
    shape = (100, 500, 500)

    def gain():
        fused = kernel_time(plan_pattern1(shape), V100).total
        split = kernels_time(plan_mo_pattern1(shape), V100)
        return split / fused

    ratio = benchmark(gain)
    (results_dir / "ablation_fusion_modelled.txt").write_text(
        f"modelled pattern-1 fusion gain (Hurricane): {ratio:.2f}x "
        f"(paper Fig 12a: 3.49-6.38x; upper bound 10x)\n"
    )
    assert 3.49 <= ratio <= 10.0


def test_measured_fused_pass(benchmark, bench_pair):
    orig, dec = bench_pair
    result, _ = benchmark(execute_pattern1, orig, dec)
    assert result.mse > 0


def test_measured_metric_oriented_passes(benchmark, bench_pair):
    orig, dec = bench_pair
    out = benchmark(metric_oriented_pattern1, orig, dec)
    assert out["rate_distortion"].mse > 0


def test_measured_fusion_consistency(bench_pair):
    """The two measured paths agree numerically (same values, different
    data movement) — fusion changes cost, never results."""
    orig, dec = bench_pair
    fused, _ = execute_pattern1(orig, dec)
    split = metric_oriented_pattern1(orig, dec)
    assert np.isclose(fused.mse, split["rate_distortion"].mse, rtol=1e-12)
    assert np.isclose(fused.min_err, split["error_stats"].min_err)
    assert np.isclose(
        fused.avg_pwr_err, split["pwr_stats"].avg_pwr_err, rtol=1e-10
    )
