"""Section IV-B correctness check: cuZC's kernels against the reference
implementations, plus wall-clock timings of the three fused functional
kernels on a Hurricane-like field.
"""

import numpy as np
import pytest

from repro.kernels.pattern1 import execute_pattern1
from repro.kernels.pattern2 import Pattern2Config, execute_pattern2
from repro.kernels.pattern3 import Pattern3Config, execute_pattern3
from repro.metrics import (
    SsimConfig,
    derivative_metrics,
    error_stats,
    rate_distortion,
    spatial_autocorrelation,
    ssim3d,
)


def test_pattern1_kernel_correct_and_timed(benchmark, bench_pair):
    orig, dec = bench_pair
    result, _ = benchmark(execute_pattern1, orig, dec)
    es = error_stats(orig, dec)
    rd = rate_distortion(orig, dec)
    assert result.min_err == pytest.approx(es.min_err)
    assert result.mse == pytest.approx(rd.mse, rel=1e-12)
    assert result.psnr == pytest.approx(rd.psnr, rel=1e-12)


def test_pattern2_kernel_correct_and_timed(benchmark, bench_pair):
    orig, dec = bench_pair
    config = Pattern2Config(max_lag=10)
    result, _ = benchmark(execute_pattern2, orig, dec, config)
    ref = derivative_metrics(orig, dec, 1)
    assert result.der1.rms_diff == pytest.approx(ref.rms_diff, rel=1e-10)
    e = dec.astype(np.float64) - orig.astype(np.float64)
    assert np.allclose(
        result.autocorrelation, spatial_autocorrelation(e, 10), atol=1e-9
    )


def test_pattern3_kernel_correct_and_timed(benchmark, bench_pair):
    orig, dec = bench_pair
    config = Pattern3Config(window=8, step=1)
    result, _ = benchmark(execute_pattern3, orig, dec, config)
    ref = ssim3d(orig, dec, SsimConfig(window=8, step=1))
    assert result.ssim == pytest.approx(ref.ssim, rel=1e-12)
