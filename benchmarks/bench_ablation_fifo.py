"""Ablation 2 (DESIGN.md): the pattern-3 shared-memory FIFO buffer.

Modelled: the FIFO-buffered SSIM kernel vs the no-FIFO variant (moZC's
SSIM) at every paper shape — the paper's ~50% claim (Fig. 12c:
1.42-1.63x) — plus the traffic accounting that explains it (each z-slice
read once vs window/step times).

Measured: the FIFO-structured functional execution vs the summed-area
reference — both O(N); the benchmark documents the constant-factor cost
of the kernel-faithful dataflow.
"""

import pytest

from repro.datasets.registry import PAPER_SHAPES
from repro.gpusim.costmodel import kernel_time
from repro.gpusim.device import V100
from repro.kernels.pattern3 import Pattern3Config, execute_pattern3, plan_pattern3
from repro.metrics.ssim import SsimConfig, ssim3d
from repro.viz.gnuplot import write_series


def test_modelled_fifo_gain_all_datasets(benchmark, results_dir):
    def gains():
        out = {}
        for name, shape in PAPER_SHAPES.items():
            with_fifo = kernel_time(plan_pattern3(shape, fifo=True), V100).total
            without = kernel_time(plan_pattern3(shape, fifo=False), V100).total
            out[name] = without / with_fifo
        return out

    ratios = benchmark(gains)
    write_series(
        results_dir / "ablation_fifo_gain.dat",
        {
            "dataset_idx": [float(i) for i in range(len(ratios))],
            "fifo_gain": list(ratios.values()),
        },
        comment="FIFO vs no-FIFO SSIM | datasets: " + ", ".join(ratios),
    )
    print("\nFIFO ablation:", {k: round(v, 3) for k, v in ratios.items()})
    for name, ratio in ratios.items():
        assert 1.42 <= ratio <= 1.63, f"{name}: {ratio:.2f}"


def test_fifo_traffic_accounting():
    """The mechanism: without the FIFO every slice is re-read w/step
    times from global memory."""
    for step in (1, 2, 4):
        cfg = Pattern3Config(window=8, step=step)
        with_fifo = plan_pattern3((64, 64, 64), cfg, fifo=True)
        without = plan_pattern3((64, 64, 64), cfg, fifo=False)
        assert (
            without.global_read_bytes
            == (8 // step) * with_fifo.global_read_bytes
        )


def test_measured_fifo_functional(benchmark, bench_pair):
    orig, dec = bench_pair
    result, _ = benchmark(execute_pattern3, orig, dec, Pattern3Config())
    assert 0.9 < result.ssim <= 1.0


def test_measured_reference_ssim(benchmark, bench_pair):
    orig, dec = bench_pair
    result = benchmark(ssim3d, orig, dec, SsimConfig())
    assert 0.9 < result.ssim <= 1.0
