"""Ablations 3-4 (DESIGN.md): blocking and occupancy/register pressure.

* The fused pattern-1 kernel's 56 regs/thread cap concurrency at 4
  blocks/SM (the paper's 64k/14k observation) — sweep the register demand
  and show the concurrency cliff and its modelled cost.
* Pattern-2 cube blocking vs a naive global-memory stencil (every
  neighbour fetched from DRAM).
"""

from dataclasses import replace

from repro.gpusim.costmodel import kernel_time
from repro.gpusim.device import V100
from repro.gpusim.occupancy import blocks_per_sm_limit
from repro.kernels.pattern1 import plan_pattern1
from repro.kernels.pattern2 import plan_pattern2
from repro.viz.gnuplot import write_series

SHAPE = (512, 512, 512)  # NYX


def test_register_pressure_sweep(benchmark, results_dir):
    def sweep():
        out = []
        for regs in (24, 32, 40, 48, 56, 64, 80, 96):
            stats = replace(plan_pattern1(SHAPE), regs_per_thread=regs)
            concurrent = blocks_per_sm_limit(
                V100, stats.threads_per_block, regs, stats.smem_per_block
            )
            out.append((regs, concurrent, kernel_time(stats, V100).total))
        return out

    rows = benchmark(sweep)
    write_series(
        results_dir / "ablation_register_pressure.dat",
        {
            "regs_per_thread": [float(r) for r, _, _ in rows],
            "concurrent_tb_per_sm": [float(c) for _, c, _ in rows],
            "modelled_seconds": [t for _, _, t in rows],
        },
        comment="pattern-1 register-pressure sweep on NYX",
    )
    by_regs = {r: (c, t) for r, c, t in rows}
    # the paper's operating point: 56 regs -> 4 concurrent blocks
    assert by_regs[56][0] == 4
    # fewer registers -> more resident blocks -> no slower
    assert by_regs[24][0] > by_regs[96][0]
    assert by_regs[24][1] <= by_regs[96][1] * 1.01


def test_blocking_vs_naive_stencil(benchmark, results_dir):
    """Shared-memory cube blocking: one global load per point per sweep
    vs 7 neighbour fetches per point for a naive stencil."""

    def gain():
        blocked = plan_pattern2(SHAPE)
        naive = replace(
            blocked,
            # every 7-point stencil tap becomes its own global read
            global_read_bytes=blocked.global_read_bytes * 7,
            shared_bytes=0,
            smem_per_block=0,
        )
        return kernel_time(naive, V100).total / kernel_time(blocked, V100).total

    ratio = benchmark(gain)
    (results_dir / "ablation_blocking.txt").write_text(
        f"pattern-2 cube blocking vs naive global stencil (NYX): {ratio:.2f}x\n"
    )
    assert ratio > 1.5
