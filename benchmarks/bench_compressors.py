"""Wall-clock compressor benchmarks (compression/decompression
throughput — Z-checker's auxiliary performance metrics, measured on this
library's own substrate)."""

import numpy as np
import pytest

from repro.compressors.registry import get_compressor


@pytest.mark.parametrize(
    "codec,kwargs",
    [
        ("sz", {"rel_bound": 1e-3}),
        ("zfp", {"rate": 8}),
        ("uniform_quant", {"rel_bound": 1e-3}),
        ("decimate", {"factor": 2}),
    ],
)
def test_compress_throughput(benchmark, bench_field, codec, kwargs):
    comp = get_compressor(codec, **kwargs)
    buf = benchmark(comp.compress, bench_field)
    assert bench_field.nbytes / buf.nbytes > 1.0


@pytest.mark.parametrize(
    "codec,kwargs",
    [
        ("sz", {"rel_bound": 1e-3}),
        ("zfp", {"rate": 8}),
    ],
)
def test_decompress_throughput(benchmark, bench_field, codec, kwargs):
    comp = get_compressor(codec, **kwargs)
    buf = comp.compress(bench_field)
    dec = benchmark(comp.decompress, buf)
    assert dec.shape == bench_field.shape
