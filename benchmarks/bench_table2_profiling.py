"""Table II: runtime profiling of cuZC's kernels per pattern × dataset.

Reproduces the resource columns exactly (Regs/TB, SMem/TB) and the
Iters/thread *trends* (our kernel geometry differs in absolute iteration
accounting — see EXPERIMENTS.md).
"""

from repro.core.profiles import runtime_profile
from repro.datasets.registry import PAPER_SHAPES
from repro.viz.ascii import ascii_table


def test_table2_runtime_profile(benchmark, results_dir):
    rows = benchmark(runtime_profile, PAPER_SHAPES)

    table = ascii_table(
        [r.formatted() for r in rows], title="Table II: cuZC runtime profiling"
    )
    (results_dir / "table2_profiling.txt").write_text(table + "\n")
    print("\n" + table)

    by = {(r.pattern, r.dataset): r for r in rows}
    # resource columns match the paper exactly
    for ds in PAPER_SHAPES:
        assert by[(1, ds)].regs_per_block == 14336
        assert by[(1, ds)].smem_per_block == 448
        assert by[(2, ds)].regs_per_block == 2304
        assert by[(2, ds)].smem_per_block == 17408
        assert by[(3, ds)].regs_per_block == 11136
    # paper's NYX pattern-1 discussion: 7 assigned / 4 concurrent TBs per SM
    assert by[(1, "nyx")].blocks_per_sm == 7
    assert by[(1, "nyx")].concurrent_blocks_per_sm == 4
    # Iters/thread orderings (paper Table II)
    it = {k: v.iters_per_thread for k, v in by.items()}
    assert it[(1, "scale_letkf")] > it[(1, "nyx")] >= it[(1, "hurricane")] > it[(1, "miranda")]
    assert it[(3, "nyx")] > it[(3, "scale_letkf")] > it[(3, "miranda")] > it[(3, "hurricane")]
