"""Ablation 5+ (DESIGN.md): geometry autotuning, roofline placement, and
the A100 what-if projection.

* The autotuner sweeps the pattern-3 block geometry and must recover the
  paper's hand-tuned operating point (12 rows → 11k regs, 4 TB/SM) as
  the modelled optimum;
* the roofline analysis quantifies the paper's "pattern-1 is cheap /
  pattern-3 dominates" observation (memory-side vs deep compute-side);
* the device projection estimates what porting cuZ-Checker to an A100
  would buy (a forward-looking what-if the model enables).
"""

from repro.analysis.autotune import project_devices, tune_pattern3_yrows
from repro.datasets.registry import PAPER_SHAPES
from repro.gpusim.device import A100, V100
from repro.gpusim.roofline import roofline_report
from repro.kernels.pattern1 import plan_pattern1
from repro.kernels.pattern2 import plan_pattern2
from repro.kernels.pattern3 import plan_pattern3
from repro.viz.gnuplot import write_series


def test_autotune_recovers_paper_geometry(benchmark, results_dir):
    def tune_all():
        return {
            name: tune_pattern3_yrows(shape)[1]
            for name, shape in PAPER_SHAPES.items()
        }

    best = benchmark(tune_all)
    points, _ = tune_pattern3_yrows(PAPER_SHAPES["hurricane"])
    write_series(
        results_dir / "autotune_pattern3_yrows.dat",
        {
            "yrows": [float(p.yrows) for p in points],
            "seconds": [p.seconds for p in points],
            "concurrent_tb": [float(p.concurrent_blocks_per_sm) for p in points],
        },
        comment="pattern-3 geometry sweep on Hurricane (inf = invalid)",
    )
    print("\nautotuned yrows per dataset:",
          {k: v.yrows for k, v in best.items()})
    # the paper's choice is the optimum on three of four datasets;
    # Scale-LETKF's very wide xy-planes favour taller blocks (18 rows) —
    # a per-dataset tuning opportunity the model surfaces
    for name in ("hurricane", "nyx", "miranda"):
        assert best[name].yrows == 12, f"{name}: model optimum moved off 12"
    assert best["scale_letkf"].yrows in (12, 14, 16, 18, 20)
    # and even there, the paper's geometry is within 20% of the optimum
    points, _ = tune_pattern3_yrows(PAPER_SHAPES["scale_letkf"])
    by_rows = {p.yrows: p.seconds for p in points}
    assert by_rows[12] <= 1.2 * best["scale_letkf"].seconds


def test_roofline_placement(benchmark, results_dir):
    shape = PAPER_SHAPES["hurricane"]

    def analyse():
        return roofline_report(
            [plan_pattern1(shape), plan_pattern2(shape), plan_pattern3(shape)]
        )

    points = benchmark(analyse)
    write_series(
        results_dir / "roofline_patterns.dat",
        {
            "intensity": [p.arithmetic_intensity for p in points],
            "attainable": [p.attainable_ops for p in points],
            "achieved": [p.achieved_ops for p in points],
        },
        comment="roofline: pattern1, pattern2, pattern3 (Hurricane)",
    )
    by = {p.name: p for p in points}
    print("\nroofline:", {
        name: (round(p.arithmetic_intensity, 1), p.limiting_roof)
        for name, p in by.items()
    })
    # pattern 3's intensity dwarfs pattern 1's (the FIFO shares data, but
    # the window math is heavy); both ends land where the paper says
    assert by["cuZC.pattern3"].arithmetic_intensity > 10 * by[
        "cuZC.pattern1"
    ].arithmetic_intensity
    assert by["cuZC.pattern3"].limiting_roof == "compute"


def test_a100_projection(benchmark, results_dir):
    def project():
        out = {}
        for pattern, planner in (
            (1, plan_pattern1), (2, plan_pattern2), (3, plan_pattern3)
        ):
            times = project_devices(
                PAPER_SHAPES["nyx"], planner, [V100, A100]
            )
            out[pattern] = times["Tesla V100"] / times["A100-SXM4-40GB"]
        return out

    gains = benchmark(project)
    (results_dir / "whatif_a100.txt").write_text(
        "A100 vs V100 modelled per-pattern gains on NYX: "
        + ", ".join(f"P{p}={g:.2f}x" for p, g in gains.items())
        + "\n"
    )
    print("\nA100/V100 gains:", {p: round(g, 2) for p, g in gains.items()})
    # A100 helps everywhere; memory-heavier kernels gain more from the
    # 1.7x bandwidth jump than compute-bound SSIM does from 1.55x ops
    assert all(1.2 <= g <= 2.0 for g in gains.values())
