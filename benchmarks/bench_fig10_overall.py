"""Fig. 10: overall speedups of cuZC over ompZC and moZC, all metrics on.

Paper rows reproduced: 22.6-31.2x vs the OpenMP CPU baseline and
1.49-1.7x vs the metric-oriented GPU baseline, across the four SDRBench
applications at their true shapes.
"""

from repro.analysis.speedup import overall_speedups
from repro.datasets.registry import PAPER_SHAPES
from repro.viz.gnuplot import write_series

PAPER_FIG10 = {
    "ompZC": (22.6, 31.2),
    "moZC": (1.49, 1.7),
}


def test_fig10_overall_speedups(benchmark, results_dir):
    rows = benchmark(overall_speedups, PAPER_SHAPES)

    by_baseline: dict[str, dict[str, float]] = {}
    for row in rows:
        by_baseline.setdefault(row.baseline, {})[row.dataset] = row.speedup

    datasets = list(PAPER_SHAPES)
    write_series(
        results_dir / "fig10_overall_speedups.dat",
        {
            "dataset_idx": [float(i) for i in range(len(datasets))],
            "vs_ompZC": [by_baseline["ompZC"][d] for d in datasets],
            "vs_moZC": [by_baseline["moZC"][d] for d in datasets],
        },
        comment=f"Fig 10 | datasets: {', '.join(datasets)} | paper: "
        "ompZC 22.6-31.2x, moZC 1.49-1.7x",
    )

    print("\nFig 10 — overall speedups (paper: 22.6-31.2x / 1.49-1.7x):")
    for baseline, (lo, hi) in PAPER_FIG10.items():
        ours = by_baseline[baseline]
        print(f"  vs {baseline}: " + "  ".join(
            f"{d}={v:.2f}x" for d, v in ours.items()
        ))
        tol = 0.05
        for dataset, value in ours.items():
            assert lo * (1 - tol) <= value <= hi * (1 + tol), (
                f"{baseline}/{dataset}: {value:.2f} outside "
                f"[{lo}, {hi}] (+/-{tol:.0%})"
            )
