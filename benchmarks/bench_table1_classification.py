"""Table I: the pattern-oriented metric classification.

Regenerates the classification table and benchmarks the coordinator's
pattern-dispatch path (mapping a metric selection to kernels to launch).
"""

from repro.core.checker import CuZChecker
from repro.config.schema import CheckerConfig
from repro.metrics.base import METRIC_REGISTRY, table1


def test_table1_classification(benchmark, results_dir):
    t = benchmark(table1)
    # regenerate the table file
    lines = ["# Table I: pattern-oriented metrics classification"]
    for category, metrics in t.items():
        lines.append(f"{category}: {', '.join(metrics)}")
    (results_dir / "table1_classification.txt").write_text("\n".join(lines) + "\n")
    # the paper's counts
    assert len(t["Category I (global reduction)"]) == 14
    assert len(t["Category II (stencil-like)"]) == 5
    assert t["Category III (sliding window)"] == ("ssim",)


def test_coordinator_dispatch(benchmark):
    """Mapping user-requested metrics to patterns (the GPU module
    coordinator's first job)."""
    config = CheckerConfig(metrics=tuple(METRIC_REGISTRY))

    def dispatch():
        return CuZChecker(config).needed_patterns()

    patterns = benchmark(dispatch)
    assert patterns == (1, 2, 3)
