"""Wall-clock benchmark of the host-side fused execution engine.

Measures, on real NumPy execution (no modelled costs):

* **fused vs unfused** — ``compare_data`` with the shared
  :class:`~repro.core.workspace.MetricWorkspace` against the historical
  per-consumer scans (``CheckerConfig(fused=False)``);
* **parallel batch scaling** — ``parallel_compare_pairs`` at 1/2/4
  workers over a multi-field synthetic dataset (thread pool, and a
  second section for the shared-memory process pool where available);
* **slab parallelism** — ``parallel_stream_field`` on one large field
  (thread and process sections likewise);
* **sliding vs naive SSIM** — the summed-area fast path against the
  explicit per-window oracle;
* **adaptive dispatch** — every static (backend, tiling) candidate vs
  the calibrated cost-model choice (``dispatch`` section; gated to be
  within 5% of the best static by ``tools/check_bench.py``);
* **parallel archive audit** — ``run_audit`` over a tree of zlib-packed
  chunked bundles, serial vs two forced worker processes, with an
  in-bench byte-identity assertion on the two reports
  (``audit_parallel`` section; core-aware gate in ``check_bench.py``).

Appends one entry to the ``runs`` trajectory in ``BENCH_host_fusion.json``
(repo root by default) so successive PRs can track the speedups.  Exits
non-zero if the fused path is slower than the unfused path — the CI gate.

Run: ``PYTHONPATH=src python benchmarks/bench_host_fusion.py [--quick]``
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from dataclasses import replace
from pathlib import Path


def _host_fingerprint() -> dict:
    """Host identity recorded in every section so committed runs and
    calibration tables are attributable to the machine that produced
    them (cores, RAM, python/numpy versions)."""
    from repro.engine.dispatch import host_fingerprint

    return host_fingerprint()


def _best_of(fn, repeats: int) -> float:
    """Best (minimum) wall-clock of ``repeats`` calls — noise-robust."""
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def _make_pair(shape, seed=0, rel_noise=1e-3):
    import numpy as np

    from repro.datasets.registry import generate_field

    orig = generate_field("hurricane", "TCf48", shape=shape, seed=seed).data
    rng = np.random.default_rng(seed + 1)
    amp = float(orig.max() - orig.min()) * rel_noise
    dec = (orig + rng.normal(scale=amp, size=orig.shape)).astype(orig.dtype)
    return orig, dec


def bench_fused(shape, repeats):
    from repro.config.defaults import default_config
    from repro.core.compare import compare_data

    orig, dec = _make_pair(shape)
    fused_cfg = replace(default_config(), fused=True)
    unfused_cfg = replace(default_config(), fused=False)
    t_fused = _best_of(
        lambda: compare_data(orig, dec, config=fused_cfg, with_baselines=False),
        repeats,
    )
    t_unfused = _best_of(
        lambda: compare_data(orig, dec, config=unfused_cfg, with_baselines=False),
        repeats,
    )
    return {
        "shape": list(shape),
        "fused_seconds": t_fused,
        "unfused_seconds": t_unfused,
        "speedup": t_unfused / t_fused,
    }


def bench_parallel(shape, n_fields, repeats, executor=None):
    from repro.parallel import parallel_compare_pairs, warm_process_pool

    pairs = [
        (f"field{i}", *_make_pair(shape, seed=10 + i)) for i in range(n_fields)
    ]
    out = {"shape": list(shape), "n_fields": n_fields, "workers": {}}
    if executor:
        out["executor"] = executor
    t1 = None
    for w in (1, 2, 4):
        if executor == "process" and w > 1:
            # spawn + import up front so the timed region is steady-state
            warm_process_pool(w)
        t = _best_of(
            lambda w=w: parallel_compare_pairs(pairs, workers=w, executor=executor),
            repeats,
        )
        t1 = t1 if t1 is not None else t
        out["workers"][str(w)] = {"seconds": t, "speedup_vs_1": t1 / t}
    return out


def bench_slab(shape, repeats, executor=None):
    from repro.parallel import parallel_stream_field, warm_process_pool

    orig, dec = _make_pair(shape, seed=42)
    L = float(orig.max() - orig.min())
    from repro.kernels.pattern3 import Pattern3Config

    cfg = Pattern3Config(dynamic_range=L)
    out = {"shape": list(shape), "workers": {}}
    if executor:
        out["executor"] = executor
    t1 = None
    for w in (1, 2, 4):
        if executor == "process" and w > 1:
            warm_process_pool(w)
        t = _best_of(
            lambda w=w: parallel_stream_field(
                orig, dec, ssim=cfg, workers=w, executor=executor
            ),
            repeats,
        )
        t1 = t1 if t1 is not None else t
        out["workers"][str(w)] = {"seconds": t, "speedup_vs_1": t1 / t}
    return out


def bench_ssim(shape, repeats):
    import math

    from repro.metrics.ssim import SsimConfig, ssim3d, ssim3d_naive

    orig, dec = _make_pair(shape, seed=99)
    cfg = SsimConfig(window=6, step=2)
    # the sliding path is sub-millisecond here — without many repeats its
    # best-of (and so the gated ratio) swings tens of percent run to run
    t_sliding = _best_of(lambda: ssim3d(orig, dec, cfg), max(repeats, 10))
    t_naive = _best_of(lambda: ssim3d_naive(orig, dec, cfg), 2)
    a = ssim3d(orig, dec, cfg).ssim
    b = ssim3d_naive(orig, dec, cfg).ssim
    if not math.isclose(a, b, rel_tol=1e-9):
        raise SystemExit(f"sliding SSIM {a} != naive SSIM {b}")
    return {
        "shape": list(shape),
        "sliding_seconds": t_sliding,
        "naive_seconds": t_naive,
        "speedup": t_naive / t_sliding,
        "ssim": a,
    }


def bench_tiled(shape, repeats, quick):
    """Tiled (cache-blocked) vs whole-array fused path: seconds + peak heap.

    Patterns 1+2 only (the tiled surface; SSIM and the spectral FFT are
    whole-array either way and would just dilute both sides equally).
    Peak memory is tracemalloc's high-water mark over one assessment,
    measured with a cold scratch pool on both sides for fairness.
    """
    import tracemalloc

    from repro.config.defaults import default_config
    from repro.core.compare import compare_data
    from repro.core.workspace import default_scratch_pool

    from repro.engine.tiling import resolve_slab

    orig, dec = _make_pair(shape, seed=7)
    base = replace(default_config(), patterns=(1, 2), auxiliary=False)
    # pin the slab depth explicitly: "auto" now hands layout selection to
    # the adaptive dispatcher, and this section measures the tiled
    # execution engine itself, not the dispatcher's choice.  Quick shapes
    # sit below the "auto" size floor — force a slab there.
    slab = 8 if quick else resolve_slab(shape, "auto", orig.dtype.itemsize)
    tiled_cfg = replace(base, tiling=slab if slab else 8)
    whole_cfg = replace(base, tiling="off")

    def _run(cfg):
        return compare_data(orig, dec, config=cfg, with_baselines=False)

    # the gated quantity is a ratio of two short measurements — extra
    # best-of repeats keep its run-to-run spread inside the gate margin
    repeats = max(repeats, 5)
    t_tiled = _best_of(lambda: _run(tiled_cfg), repeats)
    t_whole = _best_of(lambda: _run(whole_cfg), repeats)

    def _peak(cfg):
        default_scratch_pool().clear()
        tracemalloc.start()
        try:
            _run(cfg)
            return tracemalloc.get_traced_memory()[1]
        finally:
            tracemalloc.stop()

    peak_tiled = _peak(tiled_cfg)
    peak_whole = _peak(whole_cfg)
    return {
        "shape": list(shape),
        "tiled_seconds": t_tiled,
        "whole_seconds": t_whole,
        "speedup": t_whole / t_tiled,
        "peak_tiled_mb": peak_tiled / 2**20,
        "peak_whole_mb": peak_whole / 2**20,
        "peak_ratio": peak_tiled / peak_whole,
        # the gate wants bigger-is-better quantities
        "peak_reduction": peak_whole / peak_tiled,
    }


def bench_audit(shape, n_bundles, repeats):
    """Parallel archive audit vs the serial loop over the same tree.

    Builds a throwaway tree of single-field zlib-packed chunked bundles,
    audits it serially and with two forced worker processes (pool warmed
    so the timed region is steady-state), and asserts the two reports
    are byte-identical — the bench doubles as an end-to-end check of the
    coordinator's checkpoint merge.  ``speedup_vs_serial`` is the gated
    quantity (``check_bench.py::audit_gate``): >1x on multi-core hosts,
    an overhead floor on single-core ones.
    """
    import shutil
    import tempfile

    import numpy as np

    from repro.audit import run_audit
    from repro.datasets.fields import Dataset, Field
    from repro.io.bundle import save_bundle_chunked
    from repro.parallel import process_available, warm_process_pool

    root = Path(tempfile.mkdtemp(prefix="cuzchecker_bench_audit_"))
    try:
        rng = np.random.default_rng(2024)
        for i in range(n_bundles):
            ds = Dataset(name=f"bundle{i}", description="bench")
            ds.add(Field(
                f"field{i}",
                (rng.standard_normal(shape) * 50).astype(np.float32),
            ))
            save_bundle_chunked(
                ds, root / f"bundle{i}", chunk_nz=max(shape[0] // 4, 1),
                codec="zlib",
            )
        out = root / "report.json"
        t_serial = _best_of(
            lambda: run_audit(root, out_path=out, workers="serial"), repeats
        )
        serial_bytes = out.read_bytes()
        result = {
            "shape": list(shape),
            "n_bundles": n_bundles,
            "codec": "zlib",
            "serial_seconds": t_serial,
        }
        if process_available():
            warm_process_pool(2)
            t_parallel = _best_of(
                lambda: run_audit(root, out_path=out, workers=2), repeats
            )
            if out.read_bytes() != serial_bytes:
                raise SystemExit(
                    "parallel audit report differs from the serial report"
                )
            result.update(
                workers=2,
                parallel_seconds=t_parallel,
                speedup_vs_serial=t_serial / t_parallel,
            )
        return result
    finally:
        shutil.rmtree(root, ignore_errors=True)


def bench_dispatch(shapes, repeats):
    """Adaptive dispatch vs every static (backend, tiling) candidate.

    Per case: time each static candidate the dispatcher enumerates for
    the shape, fold the traced measured/predicted ratios into a fresh
    calibration table, then build the *adaptive* plan against that table
    and time what it chose.  The gate (``check_bench.py::dispatch_gate``)
    demands the adaptive plan either picked the measured-best candidate
    or landed within 5% of it.
    """
    import tempfile

    from repro.config.defaults import default_config
    from repro.core.compare import compare_data  # noqa: F401 — warm import
    from repro.engine.dispatch import (
        CalibrationTable,
        choose,
        clear_decision_cache,
    )
    from repro.engine.plan import build_plan
    from repro.telemetry.tracer import Tracer, calibration_observations

    fd, tmp = tempfile.mkstemp(prefix="cuzchecker_cal_", suffix=".json")
    os.close(fd)
    table = CalibrationTable.load(tmp)
    base_cfg = replace(default_config(), calibration="off")
    cases = []
    for shape in shapes:
        orig, dec = _make_pair(shape, seed=5)
        itemsize = orig.dtype.itemsize
        # the statics are exactly the candidate set the dispatcher would
        # enumerate uncalibrated for this shape
        candidates = choose(build_plan(base_cfg), shape, itemsize).candidates
        statics = {}
        observations = {}
        for cand in candidates:
            tiling = "off" if cand.slab is None else int(cand.slab)
            cfg = replace(base_cfg, backend=cand.backend, tiling=tiling)
            splan = build_plan(cfg, shape=shape, itemsize=itemsize)
            tracer = Tracer()
            statics[cand.label] = _best_of(
                lambda: splan.execute(orig, dec, tracer=tracer), repeats
            )
            for key, measured, base in calibration_observations(tracer.spans):
                prev = observations.get(key)
                if prev is None or measured < prev[0]:
                    observations[key] = (measured, base)
        for key, (measured, base) in sorted(observations.items()):
            table.fold(key, measured, base)
        table.save(tmp)
        clear_decision_cache()

        adaptive_cfg = replace(base_cfg, calibration=tmp)
        aplan = build_plan(adaptive_cfg, shape=shape, itemsize=itemsize)
        t_adaptive = _best_of(lambda: aplan.execute(orig, dec), repeats)
        chosen = aplan.decision.chosen.label
        best_label = min(statics, key=statics.get)
        best_seconds = statics[best_label]
        cases.append(
            {
                "shape": list(shape),
                "statics": statics,
                "best_static": best_label,
                "best_static_seconds": best_seconds,
                "adaptive_chosen": chosen,
                "adaptive_seconds": t_adaptive,
                "adaptive_vs_best": t_adaptive / best_seconds,
                "matched_best": chosen == best_label,
            }
        )
    os.unlink(tmp)
    return {"cases": cases}


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick", action="store_true", help="small shapes, fewer repeats (CI)"
    )
    parser.add_argument(
        "--output",
        type=Path,
        default=Path(__file__).resolve().parent.parent / "BENCH_host_fusion.json",
    )
    args = parser.parse_args(argv)

    if args.quick:
        shape, par_shape, slab_shape = (16, 64, 64), (12, 48, 48), (32, 48, 48)
        tiled_shape = (24, 64, 64)
        dispatch_shapes = [(16, 64, 64)]
        n_fields, repeats = 3, 2
    else:
        shape, par_shape, slab_shape = (32, 128, 128), (16, 80, 80), (64, 96, 96)
        tiled_shape = (64, 256, 256)
        # second case sits above the auto-tiling floor so slab candidates
        # join the static sweep
        dispatch_shapes = [(32, 128, 128), (64, 192, 192)]
        n_fields, repeats = 4, 3

    try:
        avail_cores = len(os.sched_getaffinity(0))
    except AttributeError:
        avail_cores = os.cpu_count() or 1

    entry = {
        "quick": args.quick,
        "cpu_count": os.cpu_count(),
        "avail_cores": avail_cores,
        "fused": bench_fused(shape, repeats),
        "parallel": bench_parallel(par_shape, n_fields, repeats),
        "slab": bench_slab(slab_shape, repeats),
        "ssim": bench_ssim((10, 28, 28), repeats),
        "tiled": bench_tiled(tiled_shape, repeats, args.quick),
        "dispatch": bench_dispatch(dispatch_shapes, repeats),
        "audit_parallel": bench_audit(
            (16, 48, 48) if args.quick else (32, 96, 96),
            n_bundles=4,
            repeats=max(repeats - 1, 1),
        ),
    }

    from repro.parallel import process_available

    if process_available():
        entry["parallel_process"] = bench_parallel(
            par_shape, n_fields, repeats, executor="process"
        )
        entry["slab_process"] = bench_slab(slab_shape, repeats, executor="process")
        # how processes compare to the GIL-bound thread pool on this host,
        # measured in the same run
        for proc_key, thread_key in (
            ("parallel_process", "parallel"), ("slab_process", "slab"),
        ):
            t_thread = entry[thread_key]["workers"]["4"]["seconds"]
            t_proc = entry[proc_key]["workers"]["4"]["seconds"]
            entry[proc_key]["vs_thread_x4"] = t_thread / t_proc

    host = _host_fingerprint()
    for section in entry.values():
        if isinstance(section, dict):
            section["host"] = host

    doc = {"runs": []}
    if args.output.exists():
        try:
            doc = json.loads(args.output.read_text())
        except json.JSONDecodeError:
            pass
    doc.setdefault("runs", []).append(entry)
    args.output.write_text(json.dumps(doc, indent=2) + "\n")

    f = entry["fused"]
    print(
        f"fused {f['fused_seconds']:.3f}s vs unfused {f['unfused_seconds']:.3f}s "
        f"-> {f['speedup']:.2f}x"
    )
    for w, row in entry["parallel"]["workers"].items():
        print(f"parallel x{w}: {row['seconds']:.3f}s ({row['speedup_vs_1']:.2f}x)")
    for key in ("parallel_process", "slab_process"):
        if key not in entry:
            continue
        for w, row in entry[key]["workers"].items():
            print(f"{key} x{w}: {row['seconds']:.3f}s ({row['speedup_vs_1']:.2f}x)")
        print(f"{key} vs thread x4: {entry[key]['vs_thread_x4']:.2f}x "
              f"({entry['avail_cores']} usable cores)")
    s = entry["ssim"]
    print(
        f"ssim sliding {s['sliding_seconds']:.4f}s vs naive "
        f"{s['naive_seconds']:.3f}s -> {s['speedup']:.0f}x"
    )
    t = entry["tiled"]
    print(
        f"tiled {t['tiled_seconds']:.3f}s vs whole {t['whole_seconds']:.3f}s "
        f"-> {t['speedup']:.2f}x; peak {t['peak_tiled_mb']:.1f} MB vs "
        f"{t['peak_whole_mb']:.1f} MB ({t['peak_ratio']:.2f}x)"
    )
    a = entry["audit_parallel"]
    if "parallel_seconds" in a:
        print(
            f"audit serial {a['serial_seconds']:.3f}s vs x{a['workers']} "
            f"{a['parallel_seconds']:.3f}s -> {a['speedup_vs_serial']:.2f}x "
            f"({a['n_bundles']} {a['codec']} bundles)"
        )
    else:
        print(f"audit serial {a['serial_seconds']:.3f}s (process pool unavailable)")
    for case in entry["dispatch"]["cases"]:
        mark = "==" if case["matched_best"] else "~"
        print(
            f"dispatch {tuple(case['shape'])}: adaptive chose "
            f"{case['adaptive_chosen']} ({case['adaptive_seconds']:.3f}s) "
            f"{mark} best static {case['best_static']} "
            f"({case['best_static_seconds']:.3f}s, "
            f"{case['adaptive_vs_best']:.3f}x)"
        )
    print(f"trajectory -> {args.output}")

    if f["speedup"] < 1.0:
        print("FAIL: fused path slower than unfused", file=sys.stderr)
        return 1
    # quick shapes are cache-resident by design — blocking can't win
    # there, so the hard in-run gate applies to the full-size run only
    # (the trajectory gate still tracks the quick ratio against its own
    # quick baseline).  Layout selection is cost-model-driven now — the
    # dispatcher simply never picks the slab layout on hosts where it
    # loses — so the floor only bounds how badly tiling may lose where
    # the memory-constrained committed runs sit near parity (0.83-0.98
    # observed on the 1-core reference container, ±15% run-to-run).
    if not args.quick and t["speedup"] < 0.75:
        print("FAIL: tiled path slower than whole-array", file=sys.stderr)
        return 1
    if case_fail := [
        c for c in entry["dispatch"]["cases"]
        if not c["matched_best"] and c["adaptive_vs_best"] > 1.05
    ]:
        for c in case_fail:
            print(
                f"FAIL: adaptive dispatch {c['adaptive_vs_best']:.3f}x the "
                f"best static on {tuple(c['shape'])}", file=sys.stderr,
            )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
