"""Fig. 12: per-pattern speedups of cuZC over both baselines.

Paper rows reproduced: (a) pattern 1 — 227-268x vs ompZC, 3.49-6.38x vs
moZC; (b) pattern 2 — 17.1-47.4x / 1.79-1.86x; (c) pattern 3 —
19.2-28.5x / 1.42-1.63x.  Dataset-shape effects (Takeaway 2) are
asserted alongside.
"""

import pytest

from repro.analysis.speedup import speedup_table
from repro.datasets.registry import PAPER_SHAPES
from repro.viz.gnuplot import write_series

#: paper bands with the documented tolerance of our calibrated model
PAPER_FIG12 = {
    1: {"ompZC": (215, 290), "moZC": (3.49, 6.38)},
    2: {"ompZC": (17.1, 47.4), "moZC": (1.70, 1.95)},
    3: {"ompZC": (19.2, 28.5), "moZC": (1.42, 1.63)},
}


@pytest.mark.parametrize("pattern", [1, 2, 3])
def test_fig12_speedups(benchmark, results_dir, pattern):
    rows = benchmark(speedup_table, PAPER_SHAPES, pattern)

    by_baseline: dict[str, dict[str, float]] = {}
    for row in rows:
        by_baseline.setdefault(row.baseline, {})[row.dataset] = row.speedup

    datasets = list(PAPER_SHAPES)
    write_series(
        results_dir / f"fig12_pattern{pattern}_speedups.dat",
        {
            "dataset_idx": [float(i) for i in range(len(datasets))],
            "vs_ompZC": [by_baseline["ompZC"][d] for d in datasets],
            "vs_moZC": [by_baseline["moZC"][d] for d in datasets],
        },
        comment=f"Fig 12 pattern {pattern} speedups | datasets: "
        + ", ".join(datasets),
    )

    print(f"\nFig 12 — pattern-{pattern} speedups:")
    for baseline, values in by_baseline.items():
        print(f"  vs {baseline}: " + "  ".join(
            f"{d}={v:.2f}x" for d, v in values.items()
        ))

    for baseline, (lo, hi) in PAPER_FIG12[pattern].items():
        for dataset, value in by_baseline[baseline].items():
            assert lo <= value <= hi, (
                f"P{pattern} vs {baseline}/{dataset}: {value:.2f} outside "
                f"[{lo}, {hi}]"
            )

    # Takeaway-2 dataset-shape effects
    omp = by_baseline["ompZC"]
    if pattern == 3:
        assert omp["nyx"] == min(omp.values()), (
            "NYX (longest z) must show the lowest pattern-3 speedup"
        )
    if pattern == 1:
        mo = by_baseline["moZC"]
        assert min(mo["nyx"], mo["scale_letkf"]) < min(
            mo["hurricane"], mo["miranda"]
        ), "large datasets must trail on pattern 1 vs moZC"
