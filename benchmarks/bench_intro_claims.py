"""Section I's quantitative motivations, made measurable.

* "lossless compressors ... generally suffer from very low compression
  ratios (around 2:1 in most of cases)" while "error-bounded lossy
  compressors can generally get fairly high compression ratios (10:1,
  100:1 or even higher)";
* "ZFP's fixed-rate mode could result in 2~3x lower compression ratios
  than its fixed-accuracy mode, with the same level of data distortion
  (in terms of PSNR)" (the FRaZ-cited claim motivating GPU-side
  assessment of cuZFP).
"""

import numpy as np

from repro.compressors.lossless import LosslessCompressor
from repro.compressors.sz import SZCompressor
from repro.compressors.zfp import ZFPCompressor
from repro.datasets.registry import generate_field, scaled_shape
from repro.metrics.rate_distortion import rate_distortion
from repro.viz.gnuplot import write_series


def test_lossless_vs_lossy_ratio(benchmark, results_dir):
    """Lossy at a loose-but-sane bound compresses an order of magnitude
    beyond lossless on smooth scientific data."""
    field = generate_field(
        "miranda", "pressure", shape=scaled_shape("miranda", 0.15)
    ).data

    def ratios():
        return {
            "lossless": LosslessCompressor().ratio(field),
            "sz_rel_1e-2": SZCompressor(rel_bound=1e-2).ratio(field),
            "sz_rel_1e-3": SZCompressor(rel_bound=1e-3).ratio(field),
        }

    out = benchmark.pedantic(ratios, rounds=1, iterations=1)
    write_series(
        results_dir / "intro_lossless_vs_lossy.dat",
        {"idx": [0.0, 1.0, 2.0], "ratio": list(out.values())},
        comment="ratios: " + ", ".join(out),
    )
    print("\nintro claim — compression ratios:", {k: round(v, 2) for k, v in out.items()})
    assert 1.0 < out["lossless"] < 3.5  # "around 2:1"
    assert out["sz_rel_1e-2"] > 8.0  # "10:1 ... or even higher"
    assert out["sz_rel_1e-2"] > 4 * out["lossless"]


def test_fixed_rate_quality_penalty(benchmark, results_dir):
    """At matched PSNR, fixed-rate ZFP needs ~2-3x the bits of
    error-bounded SZ."""
    field = generate_field(
        "miranda", "density", shape=scaled_shape("miranda", 0.15)
    ).data

    def measure():
        sz = SZCompressor(rel_bound=1e-3)
        sz_buf = sz.compress(field)
        sz_psnr = rate_distortion(field, sz.decompress(sz_buf)).psnr
        sz_rate = 8.0 * sz_buf.nbytes / field.size
        # find the cheapest ZFP rate that reaches SZ's PSNR
        for rate in (4, 6, 8, 10, 12, 14, 16, 20, 24):
            z = ZFPCompressor(rate=rate)
            z_buf = z.compress(field)
            psnr = rate_distortion(field, z.decompress(z_buf)).psnr
            if psnr >= sz_psnr:
                return sz_rate, 8.0 * z_buf.nbytes / field.size, sz_psnr, psnr
        return sz_rate, float("inf"), sz_psnr, float("nan")

    sz_rate, zfp_rate, sz_psnr, zfp_psnr = benchmark.pedantic(
        measure, rounds=1, iterations=1
    )
    penalty = zfp_rate / sz_rate
    (results_dir / "intro_fixed_rate_penalty.txt").write_text(
        f"SZ: {sz_rate:.2f} b/v @ {sz_psnr:.1f} dB | "
        f"ZFP needs {zfp_rate:.2f} b/v for {zfp_psnr:.1f} dB | "
        f"penalty {penalty:.2f}x (paper: 2~3x)\n"
    )
    print(f"\nfixed-rate penalty at matched PSNR: {penalty:.2f}x "
          f"(paper claims 2~3x)")
    assert np.isfinite(zfp_rate)
    assert 1.5 <= penalty <= 4.0


def test_sz2_high_compression_advantage(benchmark, results_dir):
    """§I: cuSZ 'supports only the design of version 1.4 ... the latest
    version 2.1 of SZ on CPU has far better compression quality
    especially for high compression cases, because of the more advanced
    data prediction algorithm'.  Sweep bounds and show the SZ2-style
    adaptive predictor's gain concentrating in the loose-bound regime."""
    from repro.compressors.sz2 import SZ2Compressor
    from repro.datasets.synthetic import spectral_field

    field = spectral_field((48, 48, 48), slope=3.0, seed=3, mean=5.0, std=2.0)
    bounds = (1e-1, 3e-2, 1e-2, 1e-3)

    def sweep():
        return {
            rel: SZ2Compressor(rel_bound=rel).ratio(field)
            / SZCompressor(rel_bound=rel).ratio(field)
            for rel in bounds
        }

    gains = benchmark.pedantic(sweep, rounds=1, iterations=1)
    write_series(
        results_dir / "intro_sz2_vs_sz14.dat",
        {"rel_bound": list(bounds), "ratio_gain": [gains[b] for b in bounds]},
        comment="SZ2-style adaptive prediction vs SZ-1.4 Lorenzo (ratio gain)",
    )
    print("\nSZ2/SZ1.4 ratio gains:", {k: round(v, 3) for k, v in gains.items()})
    # the gain concentrates at high compression (loose bounds) ...
    assert gains[1e-1] > 1.15
    assert gains[1e-1] > gains[1e-2]
    # ... and fades to parity at tight bounds
    assert 0.85 < gains[1e-3] < 1.1
