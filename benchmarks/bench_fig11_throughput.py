"""Fig. 11: per-pattern throughput of cuZC, moZC, and ompZC.

Paper rows reproduced: (a) pattern 1 — cuZC 103-137 GB/s, moZC 17-31,
ompZC 0.44-0.51; (b) pattern 2 — same ordering (absolute values not
legible in the paper); (c) pattern 3 — cuZC 497-758 MB/s, moZC 351-514,
ompZC 24.8-26.6.
"""

import pytest

from repro.analysis.throughput import pattern_throughputs
from repro.datasets.registry import PAPER_SHAPES
from repro.viz.gnuplot import write_series

#: (framework -> (lo, hi)) acceptance bands per pattern, bytes/s; None
#: means ordering-only (paper values unreadable for pattern 2)
PAPER_FIG11 = {
    1: {"cuZC": (95e9, 140e9), "moZC": (17e9, 31e9), "ompZC": (0.42e9, 0.52e9)},
    2: None,
    3: {"cuZC": (497e6, 758e6), "moZC": (351e6, 514e6), "ompZC": (24e6, 27e6)},
}


@pytest.mark.parametrize("pattern", [1, 2, 3])
def test_fig11_throughput(benchmark, results_dir, pattern):
    rows = benchmark(pattern_throughputs, PAPER_SHAPES, pattern)

    by_fw: dict[str, dict[str, float]] = {}
    for row in rows:
        by_fw.setdefault(row.framework, {})[row.dataset] = row.bytes_per_second

    datasets = list(PAPER_SHAPES)
    write_series(
        results_dir / f"fig11_pattern{pattern}_throughput.dat",
        {
            "dataset_idx": [float(i) for i in range(len(datasets))],
            **{fw: [by_fw[fw][d] for d in datasets] for fw in by_fw},
        },
        comment=f"Fig 11 pattern {pattern} throughput [B/s] | datasets: "
        + ", ".join(datasets),
    )

    unit = 1e6 if pattern == 3 else 1e9
    label = "MB/s" if pattern == 3 else "GB/s"
    print(f"\nFig 11 — pattern-{pattern} throughput [{label}]:")
    for fw, values in by_fw.items():
        print(f"  {fw}: " + "  ".join(
            f"{d}={v / unit:.2f}" for d, v in values.items()
        ))

    bands = PAPER_FIG11[pattern]
    if bands is not None:
        for fw, (lo, hi) in bands.items():
            for dataset, value in by_fw[fw].items():
                assert lo <= value <= hi, (
                    f"P{pattern} {fw}/{dataset}: {value:.3g} outside "
                    f"[{lo:.3g}, {hi:.3g}]"
                )
    # the universal ordering claim
    for dataset in datasets:
        assert by_fw["cuZC"][dataset] > by_fw["moZC"][dataset] > by_fw["ompZC"][dataset]
