"""Shared benchmark fixtures.

Two kinds of benchmarks coexist here:

* **model benchmarks** regenerate the paper's figures/tables from the
  calibrated performance models at the paper's true dataset shapes (and
  assert the paper's acceptance bands);
* **wall-clock benchmarks** measure this library's own functional layer
  (pytest-benchmark timings of the fused kernels, compressors, and the
  real fusion/FIFO ablations on the NumPy substrate).

Every benchmark writes its reproduced series under
``benchmarks/results/`` as gnuplot-compatible ``.dat`` files.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np
import pytest

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture(scope="session")
def bench_field() -> np.ndarray:
    """A Hurricane-like field at CI scale (z-thin, xy-wide)."""
    from repro.datasets.registry import generate_field, scaled_shape

    shape = scaled_shape("hurricane", 0.16)  # (16, 80, 80)
    return generate_field("hurricane", "TCf48", shape=shape).data


@pytest.fixture(scope="session")
def bench_pair(bench_field) -> tuple[np.ndarray, np.ndarray]:
    """(orig, dec) via a real SZ round trip at the paper-ish bound."""
    from repro.compressors.sz import SZCompressor

    comp = SZCompressor(rel_bound=1e-3)
    return bench_field, comp.decompress(comp.compress(bench_field))
