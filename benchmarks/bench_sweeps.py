"""Parameter sweeps beyond the paper's headline figures.

* rate-distortion of SZ vs ZFP (the introduction's fixed-rate-vs-
  error-bounded argument, quantified);
* SSIM window-size cost scaling of the pattern-3 kernel;
* multi-GPU strong scaling (Section VI future work, modelled).
"""

import numpy as np

from repro.analysis.sweep import sweep_error_bounds, sweep_ssim_windows
from repro.compressors.zfp import ZFPCompressor
from repro.multigpu.checker import MultiGpuCuZC
from repro.viz.gnuplot import write_series

BOUNDS = (1e-2, 1e-3, 1e-4)
ZFP_RATES = (4, 8, 16)


def test_rate_distortion_sz_vs_zfp(benchmark, results_dir, bench_field):
    def sweep():
        sz = sweep_error_bounds(bench_field, BOUNDS)
        zfp = sweep_error_bounds(
            bench_field, ZFP_RATES,
            compressor_factory=lambda r: ZFPCompressor(rate=r),
        )
        return sz, zfp

    sz, zfp = benchmark.pedantic(sweep, rounds=1, iterations=1)
    write_series(
        results_dir / "sweep_rate_distortion.dat",
        {
            "sz_bitrate": [p.metrics["bit_rate"] for p in sz],
            "sz_psnr": [p.metrics["psnr"] for p in sz],
            "zfp_bitrate": [p.metrics["bit_rate"] for p in zfp],
            "zfp_psnr": [p.metrics["psnr"] for p in zfp],
        },
        comment="rate-distortion: SZ (error-bounded) vs ZFP (fixed-rate)",
    )
    # error-bounded SZ dominates: at comparable bit rates, higher PSNR
    sz_by_rate = sorted((p.metrics["bit_rate"], p.metrics["psnr"]) for p in sz)
    zfp_by_rate = sorted((p.metrics["bit_rate"], p.metrics["psnr"]) for p in zfp)
    for zr, zp in zfp_by_rate:
        comparable = [sp for sr, sp in sz_by_rate if sr <= zr * 1.2]
        if comparable:
            assert max(comparable) > zp, (
                f"SZ should beat ZFP at bit rate <= {zr:.1f}"
            )


def test_ssim_window_cost_scaling(benchmark, results_dir):
    points = benchmark(sweep_ssim_windows, (100, 500, 500))
    write_series(
        results_dir / "sweep_ssim_window.dat",
        {
            "window": [p.parameter for p in points],
            "seconds": [p.metrics["seconds"] for p in points],
        },
        comment="modelled cuZC SSIM cost vs window size (Hurricane)",
    )
    secs = [p.metrics["seconds"] for p in points]
    assert secs[-1] > secs[0]  # bigger windows cost more


def test_multigpu_strong_scaling(benchmark, results_dir):
    shape = (512, 512, 512)  # NYX

    def sweep():
        t1 = MultiGpuCuZC(1).estimate(shape).total_seconds
        rows = []
        for g in (1, 2, 4, 8):
            timing = MultiGpuCuZC(g).estimate(shape)
            rows.append(
                (g, timing.total_seconds, timing.scaling_efficiency(t1))
            )
        return rows

    rows = benchmark(sweep)
    write_series(
        results_dir / "sweep_multigpu_scaling.dat",
        {
            "gpus": [float(g) for g, _, _ in rows],
            "seconds": [t for _, t, _ in rows],
            "efficiency": [e for _, _, e in rows],
        },
        comment="modelled multi-GPU strong scaling on NYX (future work)",
    )
    times = [t for _, t, _ in rows]
    assert times[0] > times[1] > times[2] > times[3]
    # Efficiency stays above 50%; it can exceed 1.0 slightly because the
    # z-split shortens each GPU's pattern-3 serial FIFO chain — the very
    # z-length effect the paper observes on NYX (Takeaway 2).
    assert all(0.5 <= e <= 1.15 for _, _, e in rows)


def test_multigpu_weak_scaling(benchmark, results_dir):
    """Weak scaling: grow the z extent with the GPU count so per-GPU work
    stays constant; time should stay near-flat (the exascale argument of
    the paper's future-work section)."""

    def sweep():
        rows = []
        for g in (1, 2, 4, 8):
            shape = (128 * g, 512, 512)
            timing = MultiGpuCuZC(g).estimate(shape)
            rows.append((g, timing.total_seconds))
        return rows

    rows = benchmark(sweep)
    write_series(
        results_dir / "sweep_multigpu_weak_scaling.dat",
        {
            "gpus": [float(g) for g, _ in rows],
            "seconds": [t for _, t in rows],
        },
        comment="modelled weak scaling (128 z-planes of 512x512 per GPU)",
    )
    times = [t for _, t in rows]
    # constant work per GPU: within 25% of flat across 1..8 GPUs
    assert max(times) / min(times) < 1.25
