"""Streaming-assessment benchmarks: chunked throughput and the
bounded-memory claim, plus the faster Huffman decode path."""

import numpy as np
import pytest

from repro.core.streaming import StreamingChecker
from repro.kernels.pattern1 import execute_pattern1
from repro.kernels.pattern3 import Pattern3Config


def test_streaming_wallclock(benchmark, bench_pair):
    orig, dec = bench_pair
    L = float(orig.max() - orig.min())

    def run():
        checker = StreamingChecker(
            orig.shape[1:], max_lag=5,
            ssim=Pattern3Config(window=8, dynamic_range=L),
        )
        for z in range(0, orig.shape[0], 4):
            checker.update(orig[z : z + 4], dec[z : z + 4])
        return checker.finalize()

    result = benchmark(run)
    batch, _ = execute_pattern1(orig, dec)
    assert result.pattern1.mse == pytest.approx(batch.mse, rel=1e-12)


def test_streaming_carry_is_bounded(bench_pair):
    """The checker's state never holds more than max_lag error slices
    plus one SSIM FIFO — independent of how many slices were streamed."""
    orig, dec = bench_pair
    checker = StreamingChecker(orig.shape[1:], max_lag=5)
    for z in range(orig.shape[0]):
        checker.update(orig[z : z + 1], dec[z : z + 1])
        assert len(checker._carry) <= 5
    checker.finalize()


@pytest.mark.parametrize("alphabet", [4, 64, 1024])
def test_huffman_decode_throughput(benchmark, alphabet, rng_seed=3):
    """Decode rate of the LUT-based canonical decoder across alphabet
    sizes (deeper codes -> wider windows, same one-lookup-per-symbol)."""
    rng = np.random.default_rng(rng_seed)
    values = rng.integers(0, alphabet, size=200_000).astype(np.int64)
    from repro.compressors.huffman import huffman_decode, huffman_encode

    blob = huffman_encode(values)
    out = benchmark(huffman_decode, blob)
    assert np.array_equal(out, values)
